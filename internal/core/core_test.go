package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/comm"
	"repro/internal/decomp"
	"repro/internal/grid"
	"repro/internal/linalg"
	"repro/internal/stencil"
)

// fixture bundles a grid/operator/decomposition/world for solver tests.
type fixture struct {
	g  *grid.Grid
	op *stencil.Operator
	d  *decomp.Decomposition
	w  *comm.World
	b  []float64
}

// newFixture builds a solver test problem. tau controls conditioning: the
// larger it is, the smaller the mass term and the harder the solve.
func newFixture(t *testing.T, g *grid.Grid, bx, by int, tau float64) *fixture {
	t.Helper()
	op := stencil.Assemble(g, stencil.PhiFromTimeStep(tau))
	d, err := decomp.New(g, bx, by, decomp.DefaultHalo)
	if err != nil {
		t.Fatal(err)
	}
	d.AssignOnePerRank()
	w, err := comm.NewWorld(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2023))
	b := make([]float64, g.N())
	for k := range b {
		if g.Mask[k] {
			b[k] = rng.NormFloat64()
		}
	}
	return &fixture{g: g, op: op, d: d, w: w, b: b}
}

func testFixture(t *testing.T) *fixture {
	return newFixture(t, grid.Generate(grid.TestSpec()), 16, 12, 20000)
}

func (f *fixture) session(t *testing.T, opts Options) *Session {
	t.Helper()
	s, err := NewSession(f.g, f.op, f.d, f.w, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// denseReference solves the full system directly (small grids only).
func (f *fixture) denseReference(t *testing.T) []float64 {
	t.Helper()
	dm := f.op.Dense()
	lu, err := linalg.Factor(dm)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, len(f.b))
	copy(x, f.b)
	lu.Solve(x)
	return x
}

func maxOceanErr(g *grid.Grid, got, want []float64) float64 {
	var m, scale float64
	for k := range want {
		if !g.Mask[k] {
			continue
		}
		if a := math.Abs(want[k]); a > scale {
			scale = a
		}
	}
	for k := range want {
		if !g.Mask[k] {
			continue
		}
		if d := math.Abs(got[k] - want[k]); d > m {
			m = d
		}
	}
	return m / scale
}

type solveFunc func(s *Session, b, x0 []float64) (Result, []float64, error)

var allSolvers = map[string]solveFunc{
	"chrongear": (*Session).SolveChronGear,
	"pcg":       (*Session).SolvePCG,
	"pcsi":      (*Session).SolvePCSI,
	"sstep":     (*Session).SolveSStep,
}

func TestSolversMatchDenseReference(t *testing.T) {
	spec := grid.TestSpec()
	spec.Nx, spec.Ny = 40, 32
	f := newFixture(t, grid.Generate(spec), 10, 8, 20000)
	want := f.denseReference(t)
	x0 := make([]float64, f.g.N())
	for name, solve := range allSolvers {
		for _, pc := range []PrecondType{PrecondIdentity, PrecondDiagonal, PrecondEVP, PrecondBlockLU} {
			if (name == "pcsi" || name == "sstep") && pc == PrecondIdentity {
				// Plain CSI on the raw operator is impractical: the
				// unpreconditioned spectrum's lower edge is clustered and
				// Lanczos cannot bracket it in few steps (this is why Hu
				// 2013 and the paper always pair CSI with at least
				// diagonal scaling). Covered by its own test below. The
				// s-step Chebyshev basis leans on the same Lanczos interval
				// and inherits the restriction.
				continue
			}
			s := f.session(t, Options{Precond: pc, Tol: 1e-12})
			res, x, err := solve(s, f.b, x0)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, pc, err)
			}
			if !res.Converged {
				t.Fatalf("%s/%s: did not converge in %d iterations (rel res %g)",
					name, pc, res.Iterations, res.RelResidual)
			}
			if e := maxOceanErr(f.g, x, want); e > 1e-9 {
				t.Fatalf("%s/%s: solution error %g", name, pc, e)
			}
			// Land rows must be exact identity: x = b.
			for k, m := range f.g.Mask {
				if !m && x[k] != f.b[k] {
					t.Fatalf("%s/%s: land row %d not identity", name, pc, k)
				}
			}
		}
	}
}

func TestPreconditioningReducesIterations(t *testing.T) {
	// The paper's Fig. 6 shape: EVP cuts iterations vs diagonal for both
	// solvers; diagonal cuts vs identity.
	f := testFixture(t)
	x0 := make([]float64, f.g.N())
	iters := func(name string, pc PrecondType) int {
		s := f.session(t, Options{Precond: pc})
		res, _, err := allSolvers[name](s, f.b, x0)
		if err != nil {
			t.Fatalf("%s/%v: %v", name, pc, err)
		}
		if !res.Converged {
			t.Fatalf("%s/%v did not converge", name, pc)
		}
		return res.Iterations
	}
	for _, name := range []string{"chrongear", "pcsi"} {
		diag := iters(name, PrecondDiagonal)
		evp := iters(name, PrecondEVP)
		if evp >= diag {
			t.Fatalf("%s iterations not improving: diag=%d evp=%d", name, diag, evp)
		}
		if name == "chrongear" {
			none := iters(name, PrecondIdentity)
			if diag > none {
				t.Fatalf("%s: diagonal (%d iters) should not lose to identity (%d)", name, diag, none)
			}
		}
	}
}

func TestUnpreconditionedCSIIsImpractical(t *testing.T) {
	// Documents the behaviour the paper designs around: without at least
	// diagonal scaling, the spectrum's lower edge defeats few-step Lanczos
	// estimation and CSI contracts impractically slowly — even with the
	// slow-convergence interval widening it makes little progress in a
	// budget that is ample for every preconditioned configuration.
	f := testFixture(t)
	s := f.session(t, Options{Precond: PrecondIdentity, MaxIters: 300})
	res, _, err := s.SolvePCSI(f.b, make([]float64, f.g.N()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Skip("unpreconditioned CSI converged quickly; grid too easy to demonstrate")
	}
	if res.RelResidual < 1e-12 {
		t.Fatalf("expected slow convergence, residual %g", res.RelResidual)
	}
}

func TestPCSINeedsMoreIterationsThanChronGear(t *testing.T) {
	// §3: K_pcsi > K_cg for the same tolerance.
	f := testFixture(t)
	x0 := make([]float64, f.g.N())
	sCG := f.session(t, Options{Precond: PrecondDiagonal})
	rCG, _, err := sCG.SolveChronGear(f.b, x0)
	if err != nil {
		t.Fatal(err)
	}
	sCSI := f.session(t, Options{Precond: PrecondDiagonal})
	rCSI, _, err := sCSI.SolvePCSI(f.b, x0)
	if err != nil {
		t.Fatal(err)
	}
	if rCSI.Iterations <= rCG.Iterations {
		t.Fatalf("expected K_pcsi > K_cg, got %d vs %d", rCSI.Iterations, rCG.Iterations)
	}
}

func TestChronGearEquivalentToPCG(t *testing.T) {
	// ChronGear is algebraically a CG rearrangement: iteration counts at the
	// same tolerance should be essentially identical (within one check
	// interval) and solutions should agree tightly.
	f := testFixture(t)
	x0 := make([]float64, f.g.N())
	sA := f.session(t, Options{Precond: PrecondDiagonal})
	rA, xA, err := sA.SolveChronGear(f.b, x0)
	if err != nil {
		t.Fatal(err)
	}
	sB := f.session(t, Options{Precond: PrecondDiagonal})
	rB, xB, err := sB.SolvePCG(f.b, x0)
	if err != nil {
		t.Fatal(err)
	}
	if d := rA.Iterations - rB.Iterations; d < -10 || d > 10 {
		t.Fatalf("ChronGear %d vs PCG %d iterations", rA.Iterations, rB.Iterations)
	}
	if e := maxOceanErr(f.g, xA, xB); e > 1e-8 {
		t.Fatalf("ChronGear/PCG solutions differ by %g", e)
	}
}

func TestSolveDeterministic(t *testing.T) {
	f := testFixture(t)
	x0 := make([]float64, f.g.N())
	run := func() []float64 {
		s := f.session(t, Options{Precond: PrecondEVP})
		_, x, err := s.SolvePCSI(f.b, x0)
		if err != nil {
			t.Fatal(err)
		}
		return x
	}
	xa, xb := run(), run()
	for k := range xa {
		if xa[k] != xb[k] {
			t.Fatalf("solve not bitwise deterministic at %d", k)
		}
	}
}

func TestRankCountInvariance(t *testing.T) {
	// The same problem on different rank counts (including serial) must give
	// the same answer to solver tolerance.
	g := grid.Generate(grid.TestSpec())
	var ref []float64
	for _, blocking := range [][2]int{{64, 48}, {16, 12}, {8, 8}} {
		f := newFixture(t, g, blocking[0], blocking[1], 20000)
		s := f.session(t, Options{Precond: PrecondDiagonal})
		res, x, err := s.SolveChronGear(f.b, make([]float64, g.N()))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("blocking %v did not converge", blocking)
		}
		if ref == nil {
			ref = x
			continue
		}
		if e := maxOceanErr(g, x, ref); e > 1e-8 {
			t.Fatalf("blocking %v: deviation %g from serial reference", blocking, e)
		}
	}
}

func TestZeroRHS(t *testing.T) {
	f := testFixture(t)
	zero := make([]float64, f.g.N())
	for name, solve := range allSolvers {
		s := f.session(t, Options{Precond: PrecondDiagonal})
		if name == "pcsi" || name == "sstep" {
			// P-CSI and s-step need eigenvalue bounds, which cannot come
			// from a zero RHS — estimate from a nonzero vector first.
			if _, _, _, err := s.EstimateEigenvalues(f.b, 0); err != nil {
				t.Fatal(err)
			}
		}
		res, x, err := solve(s, zero, zero)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Converged || res.Iterations != 0 {
			t.Fatalf("%s: zero RHS should converge instantly, got %+v", name, res)
		}
		for k, v := range x {
			if v != 0 {
				t.Fatalf("%s: nonzero solution at %d", name, k)
			}
		}
	}
}

func TestLanczosBracketsSpectrum(t *testing.T) {
	// On a small grid, compare the Lanczos interval against the true
	// spectrum of M⁻¹A (dense, diagonal M) — [ν, μ] must bracket it after
	// the safety factors.
	spec := grid.TestSpec()
	spec.Nx, spec.Ny = 24, 20
	f := newFixture(t, grid.Generate(spec), 12, 10, 20000)
	s := f.session(t, Options{Precond: PrecondDiagonal})
	nu, mu, steps, err := s.EstimateEigenvalues(f.b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if steps < 2 {
		t.Fatalf("suspiciously few Lanczos steps: %d", steps)
	}
	// True extreme eigenvalues of D⁻¹A via power iteration on the dense
	// matrix (shifted for the smallest).
	dm := f.op.Dense()
	n := dm.Rows
	diag := f.op.Diagonal()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dm.Set(i, j, dm.At(i, j)/diag[i])
		}
	}
	lamMax := powerIter(dm, nil, 600)
	lamMin := 0.0
	{
		shift := lamMax * 1.0001
		sh := linalg.NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := -dm.At(i, j)
				if i == j {
					v += shift
				}
				sh.Set(i, j, v)
			}
		}
		lamMin = shift - powerIter(sh, nil, 600)
	}
	// μ must bracket λ_max (divergence otherwise). ν is deliberately snug:
	// Lanczos approaches λ_min from above and the default safety factor
	// keeps it near the estimate, so ν may land somewhat above the true
	// λ_min — P-CSI's slow-convergence guard widens adaptively. Require ν
	// in a sane band around λ_min rather than a strict bracket.
	if mu < lamMax {
		t.Fatalf("Lanczos μ=%g below λ_max=%g", mu, lamMax)
	}
	if nu < lamMin/20 || nu > 2*lamMin {
		t.Fatalf("Lanczos ν=%g far from λ_min=%g", nu, lamMin)
	}
	if mu > lamMax*3 {
		t.Fatalf("Lanczos μ=%g too loose for λ_max=%g", mu, lamMax)
	}
}

func powerIter(m *linalg.Dense, v0 []float64, iters int) float64 {
	n := m.Rows
	v := v0
	if v == nil {
		v = make([]float64, n)
		rng := rand.New(rand.NewSource(5))
		for i := range v {
			v[i] = rng.NormFloat64()
		}
	}
	w := make([]float64, n)
	var lam float64
	for it := 0; it < iters; it++ {
		m.MulVec(w, v)
		lam = linalg.Norm2(w)
		for i := range v {
			v[i] = w[i] / lam
		}
	}
	return lam
}

func TestForcedLanczosSteps(t *testing.T) {
	f := testFixture(t)
	s := f.session(t, Options{Precond: PrecondDiagonal})
	_, _, steps, err := s.EstimateEigenvalues(f.b, 7)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 7 {
		t.Fatalf("forced 7 Lanczos steps, ran %d", steps)
	}
}

func TestReductionCounts(t *testing.T) {
	// The communication signature is the paper's core claim: ChronGear
	// performs one reduction per iteration (plus ‖b‖ and rides the check on
	// the same reduction), PCG two, P-CSI only one per CheckEvery.
	f := testFixture(t)
	x0 := make([]float64, f.g.N())
	perRank := func(res Result) int64 {
		return res.Stats.Sum.Reductions / int64(len(res.Stats.PerRank))
	}

	sCG := f.session(t, Options{Precond: PrecondDiagonal})
	rCG, _, _ := sCG.SolveChronGear(f.b, x0)
	if got, want := perRank(rCG), int64(rCG.Iterations+1); got != want {
		t.Fatalf("ChronGear reductions %d, want %d", got, want)
	}

	sPCG := f.session(t, Options{Precond: PrecondDiagonal})
	rPCG, _, _ := sPCG.SolvePCG(f.b, x0)
	if got, want := perRank(rPCG), int64(2*rPCG.Iterations+1); got != want {
		t.Fatalf("PCG reductions %d, want %d", got, want)
	}

	sCSI := f.session(t, Options{Precond: PrecondDiagonal})
	rCSI, _, _ := sCSI.SolvePCSI(f.b, x0)
	checks := rCSI.Iterations / sCSI.Opts.CheckEvery
	if got, want := perRank(rCSI), int64(checks+1); got != want {
		t.Fatalf("P-CSI reductions %d, want %d (K=%d)", got, want, rCSI.Iterations)
	}
}

func TestSetupStatsRecorded(t *testing.T) {
	f := testFixture(t)
	s := f.session(t, Options{Precond: PrecondEVP})
	if err := s.Setup(); err != nil {
		t.Fatal(err)
	}
	if s.SetupStats == nil || s.SetupStats.Sum.Flops == 0 {
		t.Fatal("EVP setup should charge preprocessing flops")
	}
	before := s.SetupStats.Sum.Flops
	if err := s.Setup(); err != nil { // idempotent
		t.Fatal(err)
	}
	if s.SetupStats.Sum.Flops != before {
		t.Fatal("Setup not idempotent")
	}
}

func TestOptionsValidation(t *testing.T) {
	f := testFixture(t)
	if _, err := NewSession(nil, f.op, f.d, f.w, Options{}); err == nil {
		t.Fatal("accepted nil grid")
	}
	if _, err := NewSession(f.g, f.op, f.d, f.w, Options{Tol: 2}); err == nil {
		t.Fatal("accepted tolerance ≥ 1")
	}
}

func TestPartitionInterior(t *testing.T) {
	for _, c := range []struct{ nxi, nyi, size, want int }{
		{24, 16, 8, 6}, {25, 16, 8, 8}, {8, 8, 8, 1}, {1, 1, 8, 1}, {17, 9, 8, 6},
	} {
		subs := partitionInterior(c.nxi, c.nyi, c.size)
		if len(subs) != c.want {
			t.Fatalf("partition(%d,%d,%d): %d tiles, want %d", c.nxi, c.nyi, c.size, len(subs), c.want)
		}
		area := 0
		for _, sb := range subs {
			if sb.nx > c.size || sb.ny > c.size || sb.nx < 1 || sb.ny < 1 {
				t.Fatalf("tile out of bounds: %+v", sb)
			}
			area += sb.nx * sb.ny
		}
		if area != c.nxi*c.nyi {
			t.Fatalf("partition(%d,%d,%d) covers %d points, want %d", c.nxi, c.nyi, c.size, area, c.nxi*c.nyi)
		}
	}
}

func TestPrecondTypeString(t *testing.T) {
	names := map[PrecondType]string{
		PrecondIdentity: "none", PrecondDiagonal: "diagonal",
		PrecondEVP: "evp", PrecondBlockLU: "blocklu", PrecondType(99): "PrecondType(99)",
	}
	for pt, want := range names {
		if pt.String() != want {
			t.Fatalf("%d.String()=%q want %q", int(pt), pt.String(), want)
		}
	}
}

func TestPipeCGMatchesReference(t *testing.T) {
	spec := grid.TestSpec()
	spec.Nx, spec.Ny = 40, 32
	f := newFixture(t, grid.Generate(spec), 10, 8, 20000)
	want := f.denseReference(t)
	x0 := make([]float64, f.g.N())
	// The pipelined recurrences drift and are more sensitive to the mildly
	// non-symmetric EVP application, so the EVP case gets the moderate
	// tolerance (see TestPipeCGIterationsCloseToPCGModerateTol).
	for _, c := range []struct {
		pc  PrecondType
		tol float64
		err float64
	}{{PrecondDiagonal, 1e-12, 1e-8}, {PrecondEVP, 1e-9, 1e-5}} {
		s := f.session(t, Options{Precond: c.pc, Tol: c.tol})
		res, x, err := s.SolvePipeCG(f.b, x0)
		if err != nil {
			t.Fatalf("%v: %v", c.pc, err)
		}
		if !res.Converged {
			t.Fatalf("%v: pipelined CG did not converge (%d iters)", c.pc, res.Iterations)
		}
		if e := maxOceanErr(f.g, x, want); e > c.err {
			t.Fatalf("%v: solution error %g", c.pc, e)
		}
	}
}

func TestPipeCGSingleReductionPerIteration(t *testing.T) {
	f := testFixture(t)
	s := f.session(t, Options{Precond: PrecondDiagonal})
	res, _, err := s.SolvePipeCG(f.b, make([]float64, f.g.N()))
	if err != nil {
		t.Fatal(err)
	}
	perRank := res.Stats.Sum.Reductions / int64(len(res.Stats.PerRank))
	if want := int64(res.Iterations + 1); perRank != want {
		t.Fatalf("pipelined CG reductions %d, want %d", perRank, want)
	}
}

func TestPipeCGIterationsCloseToPCGModerateTol(t *testing.T) {
	// In the drift-free regime (moderate tolerance) pipelining is a pure
	// rearrangement of PCG: iteration counts within ~30%. At POP's 1e-13
	// the longer recurrences' round-off drift is known to cost extra
	// iterations (Ghysels & Vanroose discuss residual replacement for
	// exactly this) — one of the reasons the paper abandons CG-type
	// latency hiding for P-CSI's latency elimination.
	f := testFixture(t)
	sA := f.session(t, Options{Precond: PrecondDiagonal, Tol: 1e-9})
	rA, _, err := sA.SolvePCG(f.b, make([]float64, f.g.N()))
	if err != nil {
		t.Fatal(err)
	}
	sB := f.session(t, Options{Precond: PrecondDiagonal, Tol: 1e-9})
	rB, _, err := sB.SolvePipeCG(f.b, make([]float64, f.g.N()))
	if err != nil {
		t.Fatal(err)
	}
	if !rA.Converged || !rB.Converged {
		t.Fatalf("convergence: pcg=%v pipecg=%v", rA.Converged, rB.Converged)
	}
	lo, hi := rA.Iterations*7/10, rA.Iterations*13/10+20
	if rB.Iterations < lo || rB.Iterations > hi {
		t.Fatalf("PCG %d vs pipelined %d iterations (want within ~30%%)", rA.Iterations, rB.Iterations)
	}
}
