package grid

import (
	"math"
	"math/rand"
)

// valueNoise is deterministic, smooth, zonally periodic value noise defined
// on (lon, lat) in degrees. It is evaluated in continuous geographic space so
// grids at different resolutions see the same continents and bathymetry.
type valueNoise struct {
	nLon, nLat int       // lattice dimensions
	cellLon    float64   // lattice spacing in longitude (degrees)
	cellLat    float64   // lattice spacing in latitude
	latMin     float64   // latitude of lattice row 0
	vals       []float64 // lattice values in [−1, 1]
}

// newValueNoise builds a lattice with the given spacing (degrees) covering
// latitudes [−90, 90] and periodic longitudes [0, 360).
func newValueNoise(rng *rand.Rand, cellDeg float64) *valueNoise {
	nLon := int(math.Ceil(360 / cellDeg))
	nLat := int(math.Ceil(180/cellDeg)) + 1
	v := &valueNoise{
		nLon:    nLon,
		nLat:    nLat,
		cellLon: 360.0 / float64(nLon),
		cellLat: 180.0 / float64(nLat-1),
		latMin:  -90,
		vals:    make([]float64, nLon*nLat),
	}
	for i := range v.vals {
		v.vals[i] = 2*rng.Float64() - 1
	}
	return v
}

// smooth is the C¹ smoothstep used for lattice interpolation.
func smooth(t float64) float64 { return t * t * (3 - 2*t) }

// at evaluates the noise at (lon, lat) degrees; lon wraps, lat clamps.
func (v *valueNoise) at(lon, lat float64) float64 {
	lon = math.Mod(lon, 360)
	if lon < 0 {
		lon += 360
	}
	fx := lon / v.cellLon
	fy := (lat - v.latMin) / v.cellLat
	if fy < 0 {
		fy = 0
	}
	if fy > float64(v.nLat-1) {
		fy = float64(v.nLat - 1)
	}
	x0 := int(fx) % v.nLon
	y0 := int(fy)
	if y0 > v.nLat-2 {
		y0 = v.nLat - 2
	}
	x1 := (x0 + 1) % v.nLon
	y1 := y0 + 1
	tx := smooth(fx - math.Floor(fx))
	ty := smooth(fy - float64(y0))
	v00 := v.vals[y0*v.nLon+x0]
	v10 := v.vals[y0*v.nLon+x1]
	v01 := v.vals[y1*v.nLon+x0]
	v11 := v.vals[y1*v.nLon+x1]
	return (v00*(1-tx)+v10*tx)*(1-ty) + (v01*(1-tx)+v11*tx)*ty
}

// fractalNoise sums octaves of value noise for coastline/bathymetry detail.
type fractalNoise struct {
	octaves []*valueNoise
	weights []float64
}

func newFractalNoise(seed int64, baseCellDeg float64, nOctaves int) *fractalNoise {
	rng := rand.New(rand.NewSource(seed))
	f := &fractalNoise{}
	cell := baseCellDeg
	w := 1.0
	for o := 0; o < nOctaves; o++ {
		f.octaves = append(f.octaves, newValueNoise(rng, cell))
		f.weights = append(f.weights, w)
		cell /= 2
		w /= 2
	}
	return f
}

// at evaluates the fractal noise; the result is in roughly [−2, 2].
func (f *fractalNoise) at(lon, lat float64) float64 {
	var s float64
	for o, n := range f.octaves {
		s += f.weights[o] * n.at(lon, lat)
	}
	return s
}
