package api

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestParseDefaultsAndSpellings(t *testing.T) {
	c, err := (&SolveRequest{}).Parse()
	if err != nil {
		t.Fatalf("empty request: %v", err)
	}
	if c.Method != core.MethodChronGear || c.Precond != core.PrecondDiagonal || c.Precision != core.Float64 {
		t.Fatalf("defaults wrong: %+v", c)
	}

	c, err = (&SolveRequest{Method: "pcsi", Precond: "evp", Precision: "fp32"}).Parse()
	if err != nil {
		t.Fatalf("pcsi/evp/fp32: %v", err)
	}
	if c.Method != core.MethodPCSI || c.Precond != core.PrecondEVP || c.Precision != core.Float32 {
		t.Fatalf("parsed wrong: %+v", c)
	}

	// csi stays the distinct alias at the wire boundary; serve's key
	// normalization canonicalizes it to PCSI + identity downstream.
	c, err = (&SolveRequest{Method: "csi"}).Parse()
	if err != nil {
		t.Fatalf("csi: %v", err)
	}
	if c.Method != core.MethodCSI {
		t.Fatalf("csi parse wrong: %+v", c)
	}
}

func TestParseBadEnumListsAccepted(t *testing.T) {
	cases := []struct {
		req   SolveRequest
		field string
		names []string
	}{
		{SolveRequest{Method: "gmres"}, "method", acceptedMethods},
		{SolveRequest{Precond: "ilu"}, "precond", acceptedPreconds},
		{SolveRequest{Precision: "fp16"}, "precision", acceptedPrecisions},
		{SolveRequest{SStep: core.MaxSStep + 1}, "sstep", acceptedSSteps},
		{SolveRequest{SStep: -1}, "sstep", acceptedSSteps},
	}
	for _, tc := range cases {
		_, err := tc.req.Parse()
		if err == nil {
			t.Fatalf("%s: expected error", tc.field)
		}
		var fe *FieldError
		if !errors.As(err, &fe) {
			t.Fatalf("%s: error %T is not *FieldError", tc.field, err)
		}
		if fe.Field != tc.field {
			t.Fatalf("field = %q, want %q", fe.Field, tc.field)
		}
		if !reflect.DeepEqual(fe.Accepted, tc.names) {
			t.Fatalf("%s accepted = %v, want %v", tc.field, fe.Accepted, tc.names)
		}
		if !errors.Is(err, core.ErrBadSpec) {
			t.Fatalf("%s: FieldError must wrap ErrBadSpec", tc.field)
		}
		for _, n := range tc.names {
			if !strings.Contains(err.Error(), n) {
				t.Fatalf("%s: message %q misses accepted name %q", tc.field, err.Error(), n)
			}
		}
	}
}

func TestParseBAndRHSMutuallyExclusive(t *testing.T) {
	_, err := (&SolveRequest{B: []float64{1}, RHS: "smooth"}).Parse()
	if !errors.Is(err, core.ErrBadSpec) {
		t.Fatalf("b+rhs: got %v, want ErrBadSpec", err)
	}
}

func TestFrameRequestRoundTrip(t *testing.T) {
	in := FrameRequest{
		Grid:      "test",
		Method:    core.MethodPCSI,
		Precond:   core.PrecondEVP,
		Precision: core.Float32,
		SStep:     8,
		B:         []float64{1.5, -2.25, math.Pi, 0, math.Copysign(0, -1)},
		X0:        []float64{0.5, 0.25, 0, 1, 2},
		TimeoutMS: 1234,
		ReturnX:   true,
		NoCache:   true,
		TraceID:   0xDEADBEEFCAFE,
	}
	raw := AppendFrameRequest(nil, in)
	kind, err := FrameKind(raw)
	if err != nil || kind != FrameSolveRequest {
		t.Fatalf("kind = %d, %v", kind, err)
	}
	out, err := DecodeFrameRequest(raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in %+v\nout %+v", in, out)
	}
	// -0 must survive bitwise.
	if math.Signbit(out.B[4]) != true {
		t.Fatalf("-0 lost its sign bit")
	}

	// Without x0 the flag clears and X0 decodes nil.
	in.X0 = nil
	out, err = DecodeFrameRequest(AppendFrameRequest(nil, in))
	if err != nil {
		t.Fatalf("decode no-x0: %v", err)
	}
	if out.X0 != nil {
		t.Fatalf("X0 = %v, want nil", out.X0)
	}
}

// TestFrameRequestV1Compat: a v1 request frame (no sstep byte) must still
// decode, with SStep defaulting to 0, so routers and workers can roll
// independently across the v1→v2 boundary.
func TestFrameRequestV1Compat(t *testing.T) {
	in := FrameRequest{
		Grid:      "test",
		Method:    core.MethodPCSI,
		Precond:   core.PrecondEVP,
		Precision: core.Float64,
		B:         []float64{1, 2, 3},
		TimeoutMS: 50,
		ReturnX:   true,
		TraceID:   7,
	}
	v2 := AppendFrameRequest(nil, in)
	// Rebuild the v1 layout by hand: same bytes minus the sstep byte at
	// offset 9 (header 6 + method + precond + precision), version byte 1.
	v1 := append([]byte(nil), v2[:9]...)
	v1 = append(v1, v2[10:]...)
	v1[4] = frameVersionV1
	out, err := DecodeFrameRequest(v1)
	if err != nil {
		t.Fatalf("decode v1: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("v1 round trip mismatch:\n in %+v\nout %+v", in, out)
	}
	if out.SStep != 0 {
		t.Fatalf("v1 frame decoded SStep %d, want 0", out.SStep)
	}
}

func TestFrameResponseRoundTrip(t *testing.T) {
	in := SolveResponse{
		Converged:   true,
		Iterations:  42,
		OuterIters:  3,
		RelResidual: 7.5e-14,
		Solver:      "pcsi",
		Precision:   "float32",
		ElapsedMS:   1.75,
		TraceID:     99,
		Cache:       "dedup",
		Shard:       2,
		X:           []float64{1, 2, 3},
	}
	out, err := DecodeFrameResponse(AppendFrameResponse(nil, in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in %+v\nout %+v", in, out)
	}

	// Shard -1 and empty cache state survive.
	in = SolveResponse{Solver: "chrongear", Precision: "float64", Shard: -1}
	out, err = DecodeFrameResponse(AppendFrameResponse(nil, in))
	if err != nil {
		t.Fatalf("decode shardless: %v", err)
	}
	if out.Shard != -1 || out.Cache != "" || out.X != nil {
		t.Fatalf("shardless mismatch: %+v", out)
	}
}

func TestFrameErrorRoundTrip(t *testing.T) {
	raw := AppendFrameError(nil, 429, "queue full")
	status, msg, err := DecodeFrameError(raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if status != 429 || msg != "queue full" {
		t.Fatalf("got %d %q", status, msg)
	}
}

func TestFrameRejectsDamage(t *testing.T) {
	good := AppendFrameRequest(nil, FrameRequest{Grid: "test", B: []float64{1, 2, 3}})

	// Every strict prefix must be rejected, never panic.
	for n := 0; n < len(good); n++ {
		if _, err := DecodeFrameRequest(good[:n]); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("prefix len %d: got %v, want ErrBadFrame", n, err)
		}
	}

	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	if _, err := DecodeFrameRequest(bad); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad magic: %v", err)
	}

	bad = append([]byte(nil), good...)
	bad[4] = 9
	if _, err := DecodeFrameRequest(bad); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad version: %v", err)
	}

	// A response frame handed to the request decoder is a kind mismatch.
	resp := AppendFrameResponse(nil, SolveResponse{Solver: "pcg", Shard: -1})
	if _, err := DecodeFrameRequest(resp); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("kind mismatch: %v", err)
	}

	// An out-of-range enum byte is a FieldError, like the JSON path.
	bad = append([]byte(nil), good...)
	bad[6] = 200 // method byte
	var fe *FieldError
	if _, err := DecodeFrameRequest(bad); !errors.As(err, &fe) || fe.Field != "method" {
		t.Fatalf("bad method byte: want FieldError{method}, got %v", err)
	}
}

func TestHashSolveDeterminismAndSensitivity(t *testing.T) {
	b := []float64{1, 2, 3}
	base := HashSolve("test", core.MethodPCSI, core.PrecondEVP, core.Float64, 0, 1e-13, b, nil)
	if base != HashSolve("test", core.MethodPCSI, core.PrecondEVP, core.Float64, 0, 1e-13, []float64{1, 2, 3}, nil) {
		t.Fatalf("hash not deterministic")
	}

	variants := []CacheKey{
		HashSolve("small", core.MethodPCSI, core.PrecondEVP, core.Float64, 0, 1e-13, b, nil),
		HashSolve("test", core.MethodPCG, core.PrecondEVP, core.Float64, 0, 1e-13, b, nil),
		HashSolve("test", core.MethodPCSI, core.PrecondDiagonal, core.Float64, 0, 1e-13, b, nil),
		HashSolve("test", core.MethodPCSI, core.PrecondEVP, core.Float32, 0, 1e-13, b, nil),
		HashSolve("test", core.MethodPCSI, core.PrecondEVP, core.Float64, 0, 1e-10, b, nil),
		HashSolve("test", core.MethodPCSI, core.PrecondEVP, core.Float64, 0, 1e-13, []float64{1, 2, 4}, nil),
		HashSolve("test", core.MethodPCSI, core.PrecondEVP, core.Float64, 0, 1e-13, b, []float64{0, 0, 1}),
		HashSolve("test", core.MethodSStep, core.PrecondEVP, core.Float64, 4, 1e-13, b, nil),
		HashSolve("test", core.MethodSStep, core.PrecondEVP, core.Float64, 8, 1e-13, b, nil),
	}
	seen := map[CacheKey]bool{base: true}
	for i, v := range variants {
		if seen[v] {
			t.Fatalf("variant %d collides with an earlier key", i)
		}
		seen[v] = true
	}

	// Last-ulp and sign-of-zero differences must produce distinct keys.
	ulp := []float64{1, 2, math.Nextafter(3, 4)}
	if HashSolve("test", core.MethodPCSI, core.PrecondEVP, core.Float64, 0, 1e-13, ulp, nil) == base {
		t.Fatalf("ulp difference not reflected in key")
	}
	negz := []float64{1, 2, math.Copysign(0, -1)}
	posz := []float64{1, 2, 0}
	if HashSolve("test", core.MethodPCSI, core.PrecondEVP, core.Float64, 0, 1e-13, negz, nil) ==
		HashSolve("test", core.MethodPCSI, core.PrecondEVP, core.Float64, 0, 1e-13, posz, nil) {
		t.Fatalf("-0 and +0 conflated")
	}
}

func TestServiceCountersAdd(t *testing.T) {
	a := ServiceCounters{Requests: 1, Shed: 2, Expired: 3, Solves: 4, Batches: 5, Errors: 6, Sessions: 7, Retried: 8, Faulted: 9, Recovered: 10, CircuitShed: 11}
	b := a
	b.Add(a)
	want := ServiceCounters{Requests: 2, Shed: 4, Expired: 6, Solves: 8, Batches: 10, Errors: 12, Sessions: 14, Retried: 16, Faulted: 18, Recovered: 20, CircuitShed: 22}
	if b != want {
		t.Fatalf("Add: got %+v, want %+v", b, want)
	}
}
