package linalg

import (
	"fmt"
	"math"
)

// SymTridiag is a symmetric tridiagonal matrix with diagonal Alpha (len n)
// and off-diagonal Beta (len n−1). It is the shape produced by the Lanczos
// process.
type SymTridiag struct {
	Alpha []float64
	Beta  []float64
}

// NewSymTridiag validates lengths and wraps the slices (no copy).
func NewSymTridiag(alpha, beta []float64) (*SymTridiag, error) {
	if len(alpha) == 0 {
		return nil, fmt.Errorf("linalg: tridiagonal matrix needs at least one diagonal entry")
	}
	if len(beta) != len(alpha)-1 {
		return nil, fmt.Errorf("linalg: tridiagonal off-diagonal length %d, want %d", len(beta), len(alpha)-1)
	}
	return &SymTridiag{Alpha: alpha, Beta: beta}, nil
}

// N returns the dimension.
func (t *SymTridiag) N() int { return len(t.Alpha) }

// sturmCount returns the number of eigenvalues of t that are strictly less
// than x, using the classic Sturm-sequence recurrence on the shifted LDLᵀ
// pivots.
func (t *SymTridiag) sturmCount(x float64) int {
	count := 0
	d := 1.0
	n := t.N()
	for i := 0; i < n; i++ {
		var off float64
		if i > 0 {
			off = t.Beta[i-1]
		}
		var prev float64
		if d != 0 {
			prev = off * off / d
		} else {
			// Standard guard: treat an exactly-zero pivot as a tiny one.
			prev = math.Abs(off) / 1e-308
		}
		d = t.Alpha[i] - x - prev
		if d < 0 {
			count++
		}
	}
	return count
}

// GershgorinBounds returns an interval [lo, hi] guaranteed to contain every
// eigenvalue of t.
func (t *SymTridiag) GershgorinBounds() (lo, hi float64) {
	n := t.N()
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		r := 0.0
		if i > 0 {
			r += math.Abs(t.Beta[i-1])
		}
		if i < n-1 {
			r += math.Abs(t.Beta[i])
		}
		if v := t.Alpha[i] - r; v < lo {
			lo = v
		}
		if v := t.Alpha[i] + r; v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Eigenvalue returns the k-th smallest eigenvalue (k in [0, n)) of t to
// absolute tolerance tol via Sturm bisection.
func (t *SymTridiag) Eigenvalue(k int, tol float64) float64 {
	n := t.N()
	if k < 0 || k >= n {
		panic(fmt.Sprintf("linalg: eigenvalue index %d out of range [0,%d)", k, n))
	}
	lo, hi := t.GershgorinBounds()
	if tol <= 0 {
		tol = 1e-12 * math.Max(1, math.Max(math.Abs(lo), math.Abs(hi)))
	}
	for hi-lo > tol {
		mid := 0.5 * (lo + hi)
		if t.sturmCount(mid) > k {
			hi = mid
		} else {
			lo = mid
		}
	}
	return 0.5 * (lo + hi)
}

// ExtremeEigenvalues returns the smallest and largest eigenvalues of t.
func (t *SymTridiag) ExtremeEigenvalues(tol float64) (smallest, largest float64) {
	return t.Eigenvalue(0, tol), t.Eigenvalue(t.N()-1, tol)
}
