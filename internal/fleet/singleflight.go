package fleet

import (
	"context"
	"sync"

	"repro/internal/api"
	"repro/internal/serve"
)

// flightGroup collapses concurrent identical requests: while one solve for
// a content hash is in flight, followers wait on its completion instead of
// dispatching duplicates. Combined with the result cache this gives the
// classic thundering-herd shape: one worker solve feeds every concurrent
// waiter, and the cache feeds everyone after.
//
// This is a purpose-built implementation (the repo takes no external
// dependencies): a map of in-flight calls keyed by content hash, each with
// a done channel followers select on alongside their own context.
type flightGroup struct {
	mu    sync.Mutex
	calls map[api.CacheKey]*flightCall
}

// dispatched is one worker solve's outcome as the group shares it: the
// worker response plus the shard that ran it.
type dispatched struct {
	resp  serve.Response
	shard int
}

// flightCall is one in-flight solve and its shared outcome.
type flightCall struct {
	done chan struct{}
	out  dispatched
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[api.CacheKey]*flightCall)}
}

// do runs fn for key, collapsing concurrent callers: the first caller (the
// leader) executes fn; followers block until the leader finishes and share
// its outcome. shared=true marks a follower. Followers receive the
// leader's outcome verbatim — the router copies X per caller before
// replying, so sharing the backing array here is safe.
//
// A follower whose ctx ends first abandons the wait without cancelling the
// leader (the leader's own context governs the solve).
func (g *flightGroup) do(ctx context.Context, key api.CacheKey, fn func() (dispatched, error)) (out dispatched, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.out, c.err, true
		case <-ctx.Done():
			return dispatched{}, context.Cause(ctx), true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.out, c.err = fn()

	// Remove before closing: a caller arriving after close must start a
	// fresh call, never read a completed one as "in flight".
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.out, c.err, false
}
