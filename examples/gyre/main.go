// Gyre: integrate the wind-driven barotropic ocean model for a month and
// watch the circulation spin up. Every time step solves the implicit
// free-surface system with the paper's P-CSI + block-EVP solver — the same
// code path POP's barotropic mode exercises 500 times per simulated day at
// 0.1°.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
	"repro/internal/core"
	"repro/internal/model"
)

func main() {
	g, err := pop.NewGrid(pop.GridTest)
	if err != nil {
		log.Fatal(err)
	}
	m, err := pop.NewModel(pop.ModelConfig{
		Grid:       g,
		Dt:         2400,
		NZ:         5,
		Solver:     model.SolverPCSI,
		SolverOpts: core.Options{Precond: core.PrecondEVP},
	})
	if err != nil {
		log.Fatal(err)
	}

	const daysTotal, reportEvery = 30, 5
	stepsPerDay := int(86400 / m.Cfg.Dt)
	fmt.Println("day   KE            max|u| m/s  ssh range m        solver iters")
	for day := 0; day < daysTotal; day += reportEvery {
		if err := m.Run(reportEvery * stepsPerDay); err != nil {
			log.Fatal(err)
		}
		var maxU, lo, hi float64
		for k := range m.U {
			maxU = math.Max(maxU, math.Hypot(m.U[k], m.V[k]))
		}
		for k, ocean := range g.Mask {
			if ocean {
				lo = math.Min(lo, m.Eta[k])
				hi = math.Max(hi, m.Eta[k])
			}
		}
		fmt.Printf("%3d   %.4e    %.3f       [%+.3f, %+.3f]   %d\n",
			day+reportEvery, m.KineticEnergy(), maxU, lo, hi,
			m.IterHistory[len(m.IterHistory)-1])
	}

	// Zonal-mean SSH profile: the gyres leave alternating highs and lows.
	fmt.Println("\nzonal-mean SSH by latitude band:")
	for j := 0; j < g.Ny; j += g.Ny / 8 {
		var sum float64
		n := 0
		for i := 0; i < g.Nx; i++ {
			k := g.Idx(i, j)
			if g.Mask[k] {
				sum += m.Eta[k]
				n++
			}
		}
		if n > 0 {
			lat := g.TLat[g.Idx(0, j)]
			bar := int(40 + sum/float64(n)*400)
			if bar < 0 {
				bar = 0
			}
			if bar > 78 {
				bar = 78
			}
			fmt.Printf("lat %+6.1f  %+.4f m  %s*\n", lat, sum/float64(n), spaces(bar))
		}
	}
}

func spaces(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = ' '
	}
	return string(out)
}
