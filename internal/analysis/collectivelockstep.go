package analysis

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// CollectiveLockstep reports collective communication calls (comm.Rank's
// AllReduce, AllReduceOverlap, Barrier, Exchange, Exchange32,
// ExchangeMulti) that are reachable only under a branch conditioned on
// rank-local state.
//
// The SPMD contract (comm.World.Run) requires every rank to make collective
// calls in the same program order, exactly as MPI does; a collective behind
// `if somethingOnlyThisRankKnows { … }` deadlocks the ranks that skip it, or
// silently misaligns the reduction sequence — the failure mode the paper's
// P-CSI depends on never happening (one misordered global_sum and the
// Chebyshev iteration is no longer comparing the same residual on every
// rank). The analyzer computes, per function, the set of values tainted by
// rank-local data — anything derived from the rank handle's own fields
// (r.ID, r.Blocks, r.Clock(), …) — and reports collectives whose enclosing
// if/for/switch/select conditions mention tainted values.
//
// Two escapes keep the rule aligned with the SPMD idioms the solvers use:
//
//   - Values produced by a collective, or by comm.Rank's documented
//     lockstep accessors (ReduceFailed, ReduceSeq), are identical on every
//     rank, so conditions on data derived from them (reduced residuals,
//     shared convergence verdicts, crash flags that rode a reduction) are
//     divergence-safe.
//   - A helper receiving the whole *comm.Rank handle is trusted: the
//     analyzer checks the helper's own body instead of tainting its
//     results, so `g, n, ok := reduceRetry(r, …)` yields lockstep values
//     (reduceRetry's internal branches are themselves analyzed).
//
// The comm package itself — the runtime that implements the collectives out
// of channels — is exempt.
var CollectiveLockstep = &analysis.Analyzer{
	Name: "collectivelockstep",
	Doc: "report collectives (AllReduce/Exchange/Barrier) guarded by rank-local conditions;" +
		" collectives must be reached in lockstep on every rank",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runCollectiveLockstep,
}

func runCollectiveLockstep(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Path() == commRankPath || !libraryScope(pass) {
		return nil, nil
	}
	ig := newIgnorer(pass)
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || inTestFile(pass.Fset, fd.Pos()) {
			return
		}
		tc := newTaintCtx(pass.TypesInfo)
		tc.solve(fd.Body)
		checkLockstep(pass, ig, tc, fd.Body)
	})
	return nil, nil
}

// libraryScope reports whether the pass is over a production (non-test)
// package. Synthesized external test packages are skipped wholesale;
// in-package test files are filtered per site by inTestFile.
func libraryScope(pass *analysis.Pass) bool {
	p := pass.Pkg.Path()
	return !isTestPkgPath(p)
}

// checkLockstep walks body keeping the enclosing control-flow conditions,
// and reports collective calls governed by a tainted (rank-local) one.
func checkLockstep(pass *analysis.Pass, ig *ignorer, tc *taintCtx, body ast.Node) {
	// guards is the stack of (condition, description) pairs governing the
	// node currently being visited.
	type guard struct {
		cond ast.Expr
		kind string
	}
	var guards []guard

	var walk func(n ast.Node)
	push := func(cond ast.Expr, kind string) { guards = append(guards, guard{cond, kind}) }
	pop := func() { guards = guards[:len(guards)-1] }

	walk = func(n ast.Node) {
		switch x := n.(type) {
		case nil:
			return
		case *ast.IfStmt:
			if x.Init != nil {
				walk(x.Init)
			}
			push(x.Cond, "if")
			walk(x.Body)
			if x.Else != nil {
				walk(x.Else)
			}
			pop()
		case *ast.ForStmt:
			if x.Init != nil {
				walk(x.Init)
			}
			if x.Cond != nil {
				push(x.Cond, "for")
			} else {
				push(nil, "for")
			}
			if x.Post != nil {
				walk(x.Post)
			}
			walk(x.Body)
			pop()
		case *ast.RangeStmt:
			push(x.X, "range")
			walk(x.Body)
			pop()
		case *ast.SwitchStmt:
			if x.Init != nil {
				walk(x.Init)
			}
			for _, stmt := range x.Body.List {
				cc := stmt.(*ast.CaseClause)
				for _, c := range cc.List {
					push(x.Tag, "switch")
					push(c, "case")
					for _, s := range cc.Body {
						walk(s)
					}
					pop()
					pop()
				}
				if len(cc.List) == 0 { // default clause: only the tag governs
					push(x.Tag, "switch")
					for _, s := range cc.Body {
						walk(s)
					}
					pop()
				}
			}
		case *ast.TypeSwitchStmt:
			if x.Init != nil {
				walk(x.Init)
			}
			push(nil, "type switch")
			walk(x.Body)
			pop()
		case *ast.SelectStmt:
			push(nil, "select")
			walk(x.Body)
			pop()
		case *ast.CallExpr:
			if name := rankMethodName(pass.TypesInfo, x); collectiveMethods[name] {
				for _, g := range guards {
					if g.kind == "select" {
						ig.reportf(x.Pos(), "collective %s inside select: case choice is scheduling-dependent, ranks will diverge", name)
						break
					}
					if g.cond != nil && tc.tainted(g.cond) {
						ig.reportf(x.Pos(),
							"collective %s is guarded by rank-local condition %q (%s); collectives must be reached in lockstep on every rank — condition only on data that rode a prior reduction",
							name, types.ExprString(g.cond), g.kind)
						break
					}
				}
			}
			for _, a := range x.Args {
				walk(a)
			}
			walk(x.Fun)
		default:
			// Generic traversal for everything without control-flow meaning.
			ast.Inspect(n, func(c ast.Node) bool {
				if c == n {
					return true
				}
				switch c.(type) {
				case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
					*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.CallExpr:
					walk(c)
					return false
				}
				return true
			})
		}
	}
	walk(body)
}

// taintCtx tracks which local variables carry rank-local data within one
// top-level function (nested function literals included: captured variables
// share the same *types.Var objects, so taint flows into the SPMD program
// closures the solvers pass to World.Run).
type taintCtx struct {
	info *types.Info
	set  map[*types.Var]bool
}

func newTaintCtx(info *types.Info) *taintCtx {
	return &taintCtx{info: info, set: make(map[*types.Var]bool)}
}

// solve runs the forward taint propagation to a fixpoint over body.
func (tc *taintCtx) solve(body ast.Node) {
	for range 32 {
		if !tc.propagate(body) {
			return
		}
	}
}

// propagate performs one pass over every assignment-like statement, marking
// left-hand sides whose right-hand sides are tainted. Returns whether the
// set grew.
func (tc *taintCtx) propagate(body ast.Node) bool {
	grew := false
	mark := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return // writes through fields/indices do not track
		}
		obj := tc.info.Defs[id]
		if obj == nil {
			obj = tc.info.Uses[id]
		}
		if v, ok := obj.(*types.Var); ok && !tc.set[v] {
			tc.set[v] = true
			grew = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Rhs) == 1 && len(x.Lhs) > 1 {
				if tc.tainted(x.Rhs[0]) {
					for _, l := range x.Lhs {
						mark(l)
					}
				}
				return true
			}
			for i, r := range x.Rhs {
				if tc.tainted(r) {
					mark(x.Lhs[i])
				}
			}
		case *ast.RangeStmt:
			if tc.tainted(x.X) {
				if x.Key != nil {
					mark(x.Key)
				}
				if x.Value != nil {
					mark(x.Value)
				}
			}
		case *ast.ValueSpec:
			for i, v := range x.Values {
				if tc.tainted(v) {
					if len(x.Values) == len(x.Names) {
						mark(x.Names[i])
					} else {
						for _, name := range x.Names {
							mark(name)
						}
					}
				}
			}
		}
		return true
	})
	return grew
}

// tainted reports whether e mentions rank-local data: a field or
// non-lockstep method of the rank handle, or a variable previously marked.
func (tc *taintCtx) tainted(e ast.Expr) bool {
	found := false
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if name := rankMethodName(tc.info, x); name != "" &&
				(collectiveMethods[name] || lockstepRankMethods[name]) {
				return false // result is identical on every rank
			}
			// Trusted-helper rule: a bare rank handle passed whole does not
			// taint the call (the helper's own body is analyzed); every
			// other argument propagates.
			for _, a := range x.Args {
				if tc.isBareRank(a) {
					continue
				}
				ast.Inspect(a, visit)
			}
			ast.Inspect(x.Fun, visit)
			return false
		case *ast.SelectorExpr:
			if t := tc.info.TypeOf(x.X); t != nil && isRankType(t) {
				name := x.Sel.Name
				if name == "World" || collectiveMethods[name] || lockstepRankMethods[name] {
					return false // shared world config / lockstep accessors
				}
				found = true // r.ID, r.Blocks, r.Clock, … — rank-local
				return false
			}
			return true
		case *ast.Ident:
			if v, ok := tc.objOf(x).(*types.Var); ok && tc.set[v] {
				found = true
			}
			return false
		case *ast.FuncLit:
			return false // the closure value itself is not data
		}
		return true
	}
	ast.Inspect(e, visit)
	return found
}

// isBareRank reports whether e is a plain reference of type comm.Rank or
// *comm.Rank (the whole handle, not data extracted from it).
func (tc *taintCtx) isBareRank(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr:
		t := tc.info.TypeOf(e)
		return t != nil && isRankType(t)
	}
	return false
}

func (tc *taintCtx) objOf(id *ast.Ident) types.Object {
	if o := tc.info.Uses[id]; o != nil {
		return o
	}
	return tc.info.Defs[id]
}
