package core

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/stencil"
)

// relL2Ocean is the RMSZ-style convergence-equivalence metric: the relative
// L2 distance between two solutions over ocean points. Both operands are
// converged solutions of the same system, so the gate bounds how much the
// float32 inner arithmetic perturbs the answer beyond the shared tolerance.
func relL2Ocean(f *fixture, a, b []float64) float64 {
	var d2, n2 float64
	for k := range b {
		if !f.g.Mask[k] {
			continue
		}
		diff := a[k] - b[k]
		d2 += diff * diff
		n2 += b[k] * b[k]
	}
	return math.Sqrt(d2 / n2)
}

// mixedMethods is the full method table the mixed-precision path supports.
var mixedMethods = []Method{MethodChronGear, MethodPCG, MethodPipeCG, MethodPCSI}

// TestMixedPrecisionMatchesFloat64 is the convergence-equivalence gate: for
// every method × preconditioner pair, the Float32 session converges to the
// same tolerance as the Float64 session, lands within the RMSZ gate of the
// float64 solution, and does not blow up the iteration count (the inner
// restarts cost some extra sweeps; a healthy mixed solve stays within a
// small factor of the float64 count).
func TestMixedPrecisionMatchesFloat64(t *testing.T) {
	f := testFixture(t)
	for _, m := range mixedMethods {
		for _, pc := range []PrecondType{PrecondDiagonal, PrecondEVP} {
			t.Run(fmt.Sprintf("%v-%v", m, pc), func(t *testing.T) {
				tol := 1e-12
				if m == MethodPipeCG && pc == PrecondEVP {
					// The float64 pipelined recurrences drift and cannot
					// reach 1e-12 under the mildly non-symmetric EVP
					// application (see TestPipeCGMatchesReference); compare
					// at the tolerance the baseline itself supports.
					tol = 1e-9
				}
				s64 := f.session(t, Options{Precond: pc, Tol: tol})
				r64, x64, err := s64.SolveContext(context.Background(), m, f.b, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !r64.Converged {
					t.Fatalf("float64 %v did not converge", m)
				}
				want := make([]float64, len(x64))
				copy(want, x64)

				s32 := f.session(t, Options{Precond: pc, Tol: tol, Precision: Float32})
				r32, x32, err := s32.SolveContext(context.Background(), m, f.b, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !r32.Converged {
					t.Fatalf("float32 %v did not converge: rel=%g after %d inner / %d outer",
						m, r32.RelResidual, r32.Iterations, r32.OuterIters)
				}
				if r32.Precision != Float32 || r32.OuterIters == 0 {
					t.Fatalf("result not stamped as mixed: precision=%v outer=%d",
						r32.Precision, r32.OuterIters)
				}
				if r32.RelResidual > tol {
					t.Fatalf("float32 relative residual %g above tol %g", r32.RelResidual, tol)
				}
				gate := 1e6 * tol // 1e-6 at the standard 1e-12 tolerance
				if z := relL2Ocean(f, x32, want); z > gate {
					t.Fatalf("RMSZ gate: float32 solution differs from float64 by %g (gate %g)", z, gate)
				}
				if r32.Iterations > 4*r64.Iterations+100 {
					t.Fatalf("float32 iteration blow-up: %d inner vs %d float64",
						r32.Iterations, r64.Iterations)
				}
			})
		}
	}
}

// TestMixedPrecisionDeterministic asserts the mixed path keeps the runtime's
// reproducibility contract: identical solves are bitwise identical, and the
// worker-shard count does not change a single bit (scheduling decides when a
// rank runs, never what it computes).
func TestMixedPrecisionDeterministic(t *testing.T) {
	f := testFixture(t)
	solve := func(threads int) []float64 {
		f.w.SetThreads(threads)
		defer f.w.SetThreads(0)
		s := f.session(t, Options{Precond: PrecondEVP, Tol: 1e-12, Precision: Float32})
		_, x, err := s.SolveContext(context.Background(), MethodChronGear, f.b, nil)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, len(x))
		copy(out, x)
		return out
	}
	ref := solve(0)
	for _, threads := range []int{1, 2, 4, 8} {
		got := solve(threads)
		for k := range ref {
			if math.Float64bits(got[k]) != math.Float64bits(ref[k]) {
				t.Fatalf("threads=%d: solution differs from default at %d: %v vs %v",
					threads, k, got[k], ref[k])
			}
		}
	}
}

// TestFloat64BitwiseAcrossThreads is the scheduler gate at the solver
// level: float64 solutions and residual histories are bitwise identical
// across worker-shard counts, so golden traces stay valid whatever
// -threads says.
func TestFloat64BitwiseAcrossThreads(t *testing.T) {
	f := testFixture(t)
	type run struct {
		x    []float64
		hist []uint64
	}
	solve := func(threads int) run {
		f.w.SetThreads(threads)
		defer f.w.SetThreads(0)
		s := f.session(t, Options{Precond: PrecondEVP, Tol: 1e-12})
		res, x, err := s.SolveContext(context.Background(), MethodPCSI, f.b, nil)
		if err != nil {
			t.Fatal(err)
		}
		r := run{x: make([]float64, len(x))}
		copy(r.x, x)
		for _, p := range res.Trace.Residuals {
			r.hist = append(r.hist, math.Float64bits(p.RelResidual))
		}
		return r
	}
	ref := solve(1)
	for _, threads := range []int{2, 4, 8} {
		got := solve(threads)
		for k := range ref.x {
			if math.Float64bits(got.x[k]) != math.Float64bits(ref.x[k]) {
				t.Fatalf("threads=%d: solution bit-differs at %d", threads, k)
			}
		}
		if len(got.hist) != len(ref.hist) {
			t.Fatalf("threads=%d: %d residual checks vs %d", threads, len(got.hist), len(ref.hist))
		}
		for i := range ref.hist {
			if got.hist[i] != ref.hist[i] {
				t.Fatalf("threads=%d: residual history bit-differs at check %d", threads, i)
			}
		}
	}
}

// TestMixedKernelsZeroAlloc pins the float32 kernels as allocation-free:
// the mixed hot path must match the float64 path's zero-allocation
// steady-state contract.
func TestMixedKernelsZeroAlloc(t *testing.T) {
	f := testFixture(t)
	op := f.op
	// One block covering the whole grid keeps the harness trivial.
	b := f.d.Blocks[f.d.OceanBlocks[0]]
	loc := f.d.LocalOperator(op, &b)
	loc32 := stencil.NewLocal32(loc)
	n := loc.NxP * loc.NyP
	a32 := make([]float32, n)
	b32 := make([]float32, n)
	a64 := make([]float64, n)
	for k := range a32 {
		a32[k] = 1
		b32[k] = 2
		a64[k] = 3
	}
	var sink float64
	for name, fn := range map[string]func(){
		"residual32":   func() { residual32(loc32, a32, b32, b32) },
		"xpay32":       func() { xpay32(loc32, a32, b32, 0.5) },
		"axpy32":       func() { axpy32(loc32, a32, b32, 0.5) },
		"chebUpdate32": func() { chebUpdate32(loc32, a32, b32, 0.5, 0.25) },
		"scaleTo32":    func() { scaleTo32(loc32, a32, a64, 0.5) },
		"axpyFrom32":   func() { axpyFrom32(loc32, a64, b32, 0.5) },
		"apply32":      func() { loc32.Apply(a32, b32) },
		"applyDot32":   func() { sink += loc32.ApplyAndMaskedDot(a32, b32) },
		"maskedDot32":  func() { sink += loc32.MaskedDotInterior(a32, b32) },
	} {
		if allocs := testing.AllocsPerRun(10, fn); allocs > 0 {
			t.Errorf("%s: %.1f allocs per run, want 0", name, allocs)
		}
	}
	_ = sink
}

// TestMixedSteadyStateAllocFree extends the steady-state zero-allocation
// gate to whole mixed solves: after the first solve warms the float32
// workspaces, repeat solves allocate only the per-solve fixed cost
// (goroutines, Result bookkeeping) — differencing long against short solves
// isolates the iteration body at zero.
func TestMixedSteadyStateAllocFree(t *testing.T) {
	f := testFixture(t)
	mk := func(iters int) *Session {
		s, err := NewSession(f.g, f.op, f.d, f.w, Options{
			Precond: PrecondDiagonal, Tol: 1e-300, MaxIters: iters,
			CheckEvery: 10, Precision: Float32})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	sShort, sLong := mk(1), mk(51)
	x0 := make([]float64, f.g.N())
	run := func(s *Session) func() {
		return func() {
			if _, _, err := s.SolveContext(context.Background(), MethodChronGear, f.b, x0); err != nil {
				t.Fatal(err)
			}
		}
	}
	run(sShort)()
	run(sLong)()
	a := testing.AllocsPerRun(3, run(sShort))
	b := testing.AllocsPerRun(3, run(sLong))
	if per := (b - a) / 50; per > 0 {
		t.Fatalf("%.3f allocations per steady-state mixed iteration, want 0", per)
	}
}

// TestParsePrecision covers the flag-name mapping.
func TestParsePrecision(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Precision
		err  bool
	}{
		{"", Float64, false},
		{"float64", Float64, false},
		{"fp64", Float64, false},
		{"double", Float64, false},
		{"float32", Float32, false},
		{"fp32", Float32, false},
		{"single", Float32, false},
		{"half", 0, true},
	} {
		got, err := ParsePrecision(tc.in)
		if tc.err != (err != nil) || got != tc.want {
			t.Errorf("ParsePrecision(%q) = %v, %v", tc.in, got, err)
		}
	}
}
