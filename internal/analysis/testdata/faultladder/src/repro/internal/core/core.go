// Package core is a resilience-ladder stand-in: Method constants must be
// referenced from SolveResilient or annotated //pop:noresilient.
package core

// Method selects the solver algorithm.
type Method int

const (
	// MethodA is handled by the ladder's guard.
	MethodA Method = iota
	// MethodB is missing from the ladder and unannotated.
	MethodB // want `solver method MethodB is not reachable from the SolveResilient degraded-mode ladder`
	// MethodC is deliberately outside the ladder.
	//
	//pop:noresilient request-level retry covers this method
	MethodC
	// MethodD is the ladder's fallback rung.
	MethodD
)

// SolveResilient is the degraded-mode ladder: MethodA degrades to MethodD,
// everything else passes through.
func SolveResilient(m Method) Method {
	if m == MethodA {
		return MethodD
	}
	return m
}
