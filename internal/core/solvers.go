package core

import "repro/internal/stencil"

// Block-level vector kernels. All operate on the interior of padded arrays
// and are charged with the paper's flop accounting (§2.2): one unit per
// point per vector operation, two per masked inner product, nine per
// stencil application — so the Session's virtual times reproduce the
// coefficients of Equations 2/3/5/6 by construction.

// residual computes r = b − A·x on the interior (fused; charged as one
// stencil application). x must have valid ring-1 halos.
func residual(loc *stencil.Local, r, b, x []float64) {
	nx := loc.NxP
	h := loc.H
	for j := h; j < loc.NyP-h; j++ {
		base := j * nx
		for i := h; i < nx-h; i++ {
			k := base + i
			r[k] = b[k] - (loc.AC[k]*x[k] +
				loc.AN[k]*x[k+nx] + loc.AN[k-nx]*x[k-nx] +
				loc.AE[k]*x[k+1] + loc.AE[k-1]*x[k-1] +
				loc.ANE[k]*x[k+nx+1] + loc.ANE[k-nx]*x[k-nx+1] +
				loc.ANE[k-1]*x[k+nx-1] + loc.ANE[k-nx-1]*x[k-nx-1])
		}
	}
}

// xpay computes dst = x + a·dst on the interior (ChronGear's s/p updates).
func xpay(loc *stencil.Local, dst, x []float64, a float64) {
	nx := loc.NxP
	h := loc.H
	for j := h; j < loc.NyP-h; j++ {
		base := j * nx
		for i := h; i < nx-h; i++ {
			k := base + i
			dst[k] = x[k] + a*dst[k]
		}
	}
}

// axpy computes dst += a·x on the interior.
func axpy(loc *stencil.Local, dst, x []float64, a float64) {
	nx := loc.NxP
	h := loc.H
	for j := h; j < loc.NyP-h; j++ {
		base := j * nx
		for i := h; i < nx-h; i++ {
			dst[base+i] += a * x[base+i]
		}
	}
}

// chebUpdate computes dx = ω·rp + c·dx on the interior (P-CSI line 7;
// charged as two vector operations).
func chebUpdate(loc *stencil.Local, dx, rp []float64, omega, c float64) {
	nx := loc.NxP
	h := loc.H
	for j := h; j < loc.NyP-h; j++ {
		base := j * nx
		for i := h; i < nx-h; i++ {
			k := base + i
			dx[k] = omega*rp[k] + c*dx[k]
		}
	}
}
