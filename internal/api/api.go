// Package api is the shared wire surface of the solve service: the typed
// request/response structs, the versioned HTTP paths, the enum
// normalization applied once at the boundary, the compact binary frame the
// fleet router and its workers speak on the hot path, and the content hash
// that keys the fleet's result cache.
//
// Before this package, popserver, popbench and every ad-hoc client carried
// their own copies of the solve JSON structs; they now all import these.
// The HTTP surface is versioned under /v1 — V1Solve, V1Stats, V1Health —
// with the legacy unversioned paths kept as shims that answer identically
// but stamp a Deprecation header (LegacySolve, DeprecationValue).
//
// Two encodings share the same logical schema:
//
//   - JSON (ContentTypeJSON): the interoperable default for humans, curl,
//     and load balancers.
//   - A compact binary frame (ContentTypeFrame): length-prefixed strings,
//     raw little-endian float64 vectors, no per-request reflection or
//     base64 — the router↔worker hot path, where a 3072-point RHS costs
//     24 KiB on the wire instead of ~60 KiB of JSON digits. See frame.go
//     for the exact layout (documented in DESIGN.md §13).
package api

// Versioned HTTP paths. The unversioned legacy paths answer identically
// but carry a Deprecation header pointing at their /v1 replacement.
const (
	// V1Solve is the versioned solve endpoint (POST, JSON or binary frame).
	V1Solve = "/v1/solve"
	// V1Stats is the versioned counter-snapshot endpoint (GET).
	V1Stats = "/v1/stats"
	// V1Health is the versioned health endpoint (GET; 200 serving, 503
	// draining).
	V1Health = "/v1/healthz"
	// LegacySolve is the pre-/v1 solve path, kept as a deprecated shim.
	LegacySolve = "/solve"
	// LegacyStats is the pre-/v1 stats path, kept as a deprecated shim.
	LegacyStats = "/stats"
	// LegacyHealth is the pre-/v1 health path, kept as a deprecated shim.
	LegacyHealth = "/healthz"
)

// DeprecationHeader is the response header legacy-path shims set (RFC 8594
// style); its value is DeprecationValue.
const DeprecationHeader = "Deprecation"

// DeprecationValue marks a legacy-path response as deprecated and names the
// versioned replacement prefix clients should migrate to.
const DeprecationValue = `version="v1"`

// Content types of the two wire encodings.
const (
	// ContentTypeJSON is the JSON encoding of the wire structs.
	ContentTypeJSON = "application/json"
	// ContentTypeFrame is the compact binary frame encoding (frame.go).
	ContentTypeFrame = "application/x-pop-frame"
)

// SolveRequest is one solve submission on the wire (POST V1Solve). Exactly
// one of B or RHS supplies the right-hand side: B is an explicit vector of
// grid length, RHS names a synthetic generator ("smooth") so load
// generators can exercise the endpoint with tiny request bodies.
type SolveRequest struct {
	// Grid names the preset to solve on ("" = "test").
	Grid string `json:"grid,omitempty"`
	// Method names the solver algorithm ("" = "chrongear"); see
	// AcceptedMethods.
	Method string `json:"method,omitempty"`
	// Precond names the preconditioner ("" = "diagonal"); see
	// AcceptedPreconds.
	Precond string `json:"precond,omitempty"`
	// Precision names the iteration arithmetic ("" = "float64"); see
	// AcceptedPrecisions.
	Precision string `json:"precision,omitempty"`
	// SStep is the communication-avoiding block size for the "sstep"
	// method (0 = server default of 4; valid 1..16). Ignored for other
	// methods.
	SStep int `json:"sstep,omitempty"`
	// B is the explicit right-hand side (length = grid N); mutually
	// exclusive with RHS.
	B []float64 `json:"b,omitempty"`
	// RHS names a synthetic right-hand-side generator; mutually exclusive
	// with B.
	//
	//pop:nonsemantic resolved to an explicit B at the boundary before hashing; frames never carry generator names
	RHS string `json:"rhs,omitempty"`
	// X0 is the initial guess (nil = zero vector).
	X0 []float64 `json:"x0,omitempty"`
	// TimeoutMS bounds the solve in milliseconds (0 = no request deadline).
	//
	//pop:nonsemantic request deadline; bounds when the solve may run, not what it computes
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// ReturnX asks for the solution vector in the response.
	//
	//pop:nonsemantic response-shape preference; the cached numerics are identical either way
	ReturnX bool `json:"return_x,omitempty"`
	// TraceID lets the client supply its own request-scoped trace ID
	// (e.g. propagated from an upstream system); 0 assigns a fresh one.
	//
	//pop:nonsemantic observability correlation only; hashing it would defeat the result cache
	TraceID uint64 `json:"trace_id,omitempty"`
	// NoCache asks the fleet router to bypass its result cache for this
	// request (the solve still populates it). Single-process servers
	// ignore it.
	//
	//pop:nonsemantic cache-policy hint; changes where the answer comes from, not the answer
	NoCache bool `json:"no_cache,omitempty"`
}

// SolveResponse is one completed solve on the wire.
type SolveResponse struct {
	// Converged reports whether the solve met its tolerance.
	Converged bool `json:"converged"`
	// Iterations is the solver iteration count.
	Iterations int `json:"iterations"`
	// OuterIters counts iterative-refinement outer passes (0 for pure
	// float64 solves).
	OuterIters int `json:"outer_iters,omitempty"`
	// RelResidual is ‖r‖/‖b‖ at the last convergence check.
	RelResidual float64 `json:"rel_residual"`
	// Solver names the algorithm that produced the answer.
	Solver string `json:"solver"`
	// Precision names the iteration arithmetic the solve ran in.
	Precision string `json:"precision,omitempty"`
	// ElapsedMS is the server-side wall time of the request in
	// milliseconds.
	ElapsedMS float64 `json:"elapsed_ms"`
	// TraceID correlates the response with its rank-level spans.
	TraceID uint64 `json:"trace_id"`
	// Cache reports how a fleet router satisfied the request: "hit",
	// "miss", "dedup" — or "" when the request never crossed a router.
	Cache string `json:"cache,omitempty"`
	// Shard is the fleet worker index that ran the solve (-1 when the
	// request was answered without dispatching to a worker: cache hits,
	// or a single-process server).
	Shard int `json:"shard"`
	// X is the solution vector, present only when the request set
	// ReturnX.
	X []float64 `json:"x,omitempty"`
}

// ErrorBody is the JSON error envelope every non-2xx response carries.
type ErrorBody struct {
	// Error is the human-readable message.
	Error string `json:"error"`
	// Field names the request field that failed validation ("" for
	// non-validation errors).
	Field string `json:"field,omitempty"`
	// Accepted lists the values the failing field accepts, so a 400 is
	// self-repairing rather than opaque.
	Accepted []string `json:"accepted,omitempty"`
}

// HealthResponse is the GET V1Health body.
type HealthResponse struct {
	// Status is "ok" while serving, "draining" during shutdown.
	Status string `json:"status"`
}

// ServiceCounters is the wire form of one solve service's counter
// snapshot (serve.Stats flattened with JSON names; the struct is mirrored
// here so the wire surface has no dependency on the serving internals).
type ServiceCounters struct {
	// Requests counts solve admissions attempted.
	Requests int64 `json:"requests"`
	// Shed counts requests rejected because a queue was full.
	Shed int64 `json:"shed"`
	// Expired counts requests that expired in queue before solving.
	Expired int64 `json:"expired"`
	// Solves counts solves executed.
	Solves int64 `json:"solves"`
	// Batches counts session checkouts (≤ Solves when coalescing works).
	Batches int64 `json:"batches"`
	// Errors counts solves that returned an error.
	Errors int64 `json:"errors"`
	// Sessions counts sessions built across all keys.
	Sessions int64 `json:"sessions"`
	// Retried counts request re-runs after a faulted resilient solve.
	Retried int64 `json:"retried"`
	// Faulted counts requests whose solve faulted beyond the retry budget.
	Faulted int64 `json:"faulted"`
	// Recovered counts requests rescued by a retry after a faulted solve.
	Recovered int64 `json:"recovered"`
	// CircuitShed counts requests rejected because a circuit was open.
	CircuitShed int64 `json:"circuit_shed"`
}

// Add accumulates o into c field by field (the fleet's /v1/stats
// aggregation).
func (c *ServiceCounters) Add(o ServiceCounters) {
	c.Requests += o.Requests
	c.Shed += o.Shed
	c.Expired += o.Expired
	c.Solves += o.Solves
	c.Batches += o.Batches
	c.Errors += o.Errors
	c.Sessions += o.Sessions
	c.Retried += o.Retried
	c.Faulted += o.Faulted
	c.Recovered += o.Recovered
	c.CircuitShed += o.CircuitShed
}

// FleetCounters is the router-level slice of a fleet's /v1/stats: what the
// routing, caching and deduplication layers did, above the per-worker
// serving counters.
type FleetCounters struct {
	// Requests counts requests entering the router.
	Requests int64 `json:"requests"`
	// CacheHits counts requests answered from the result cache.
	CacheHits int64 `json:"cache_hits"`
	// CacheMisses counts requests that went to a worker.
	CacheMisses int64 `json:"cache_misses"`
	// Deduped counts requests collapsed onto an identical in-flight solve.
	Deduped int64 `json:"deduped"`
	// Failovers counts requests re-routed to the ring's next worker after
	// a shed (overload or open circuit) on their home shard.
	Failovers int64 `json:"failovers"`
	// Errors counts requests that left the router with an error.
	Errors int64 `json:"errors"`
	// CacheEntries is the current result-cache entry count.
	CacheEntries int64 `json:"cache_entries"`
	// CacheEvictions counts LRU evictions.
	CacheEvictions int64 `json:"cache_evictions"`
	// CacheExpirations counts TTL expirations observed at lookup.
	CacheExpirations int64 `json:"cache_expirations"`
}

// WorkerStats is one fleet worker's row in the /v1/stats aggregation.
type WorkerStats struct {
	// Worker is the worker's shard index on the ring.
	Worker int `json:"worker"`
	// Addr is the worker's base URL ("local" for in-process workers).
	Addr string `json:"addr"`
	// Healthy reports whether the worker's last stats fetch succeeded
	// (always true for in-process workers).
	Healthy bool `json:"healthy"`
	// Counters is the worker's own counter snapshot.
	Counters ServiceCounters `json:"counters"`
}

// StatsResponse is the GET V1Stats body — self-describing: build identity,
// resolved grids, per-worker counters and their fleet-level sum. A
// single-process server reports itself as one worker and omits Fleet.
type StatsResponse struct {
	// GoVersion is runtime.Version() of the serving binary.
	GoVersion string `json:"go_version"`
	// Grids lists the grid presets resolved so far.
	Grids []string `json:"grids"`
	// Fleet carries the router-level counters (nil on single-process
	// servers).
	Fleet *FleetCounters `json:"fleet,omitempty"`
	// Workers lists each worker's counters (one entry on single-process
	// servers).
	Workers []WorkerStats `json:"workers"`
	// Totals sums the worker counters — the fleet-level aggregate view.
	Totals ServiceCounters `json:"totals"`
}
