// Package grid builds the horizontal ocean grids that the barotropic solver
// runs on: a POP-style orthogonal curvilinear (stretched, displaced-pole)
// grid with land masks, bathymetry, and the metric terms needed to assemble
// the nine-point implicit free-surface operator.
//
// The paper uses the real CESM POP dipole grids (1°: 320×384, 0.1°:
// 3600×2400) with observed bathymetry; those datasets are proprietary to the
// CESM distribution, so this package generates deterministic synthetic
// equivalents at the same dimensions: continents, shelves, islands and
// narrow straits produced from seeded smooth noise plus hand-shaped basins.
// What matters for solver behaviour is preserved — matrix size, irregular
// land masking, variable coefficients, and the latitude-dependent grid
// anisotropy that sets the condition number (see DESIGN.md §2).
//
// Layout conventions (B-grid, following the POP reference manual):
//
//   - T-points (cell centres) carry the sea-surface height η, the land
//     mask, and the cell depth HT. Index (i,j), flattened j*Nx+i.
//   - U-points (cell corners) sit at the north-east corner of T-cell (i,j)
//     and carry the corner depth HU and the local grid spacings DXU/DYU.
//
// A corner is "wet" only when all four surrounding T-cells are ocean;
// boundary corners are dry, which imposes the no-normal-flow condition.
package grid

import "fmt"

// Grid is a horizontal curvilinear ocean grid.
type Grid struct {
	// Name labels the grid preset.
	Name string
	// Nx and Ny are the T-point dimensions.
	Nx, Ny int

	// T-point fields, length Nx*Ny, index j*Nx+i.
	Mask  []bool    // true = ocean
	HT    []float64 // ocean depth at T-points (m); 0 on land
	TAREA []float64 // T-cell area (m²)
	TLat  []float64 // latitude of T-point (degrees)
	TLon  []float64 // longitude of T-point (degrees)

	// U-point (corner) fields, length Nx*Ny; entry (i,j) is the corner NE
	// of T-cell (i,j). Corners on the outermost row/column are dry.
	HU    []float64 // min depth of the four surrounding T-cells (m)
	DXU   []float64 // zonal grid spacing at the corner (m)
	DYU   []float64 // meridional grid spacing at the corner (m)
	UAREA []float64 // corner cell area (m²)
}

// Idx flattens (i,j) to the storage index. Callers are expected to keep
// 0 ≤ i < Nx and 0 ≤ j < Ny.
func (g *Grid) Idx(i, j int) int { return j*g.Nx + i }

// N returns the total number of grid points, land included.
func (g *Grid) N() int { return g.Nx * g.Ny }

// IsOcean reports whether T-point (i,j) is ocean; out-of-range points are
// land, so callers can probe neighbours without bounds checks.
func (g *Grid) IsOcean(i, j int) bool {
	if i < 0 || i >= g.Nx || j < 0 || j >= g.Ny {
		return false
	}
	return g.Mask[g.Idx(i, j)]
}

// OceanPoints returns the number of ocean T-points.
func (g *Grid) OceanPoints() int {
	n := 0
	for _, m := range g.Mask {
		if m {
			n++
		}
	}
	return n
}

// OceanFraction returns the fraction of T-points that are ocean.
func (g *Grid) OceanFraction() float64 {
	return float64(g.OceanPoints()) / float64(g.N())
}

// Validate checks internal consistency: array lengths, dry boundary corners,
// the HU = min(HT of 4 neighbours) relation, and positive metrics on wet
// points. It returns the first violation found.
func (g *Grid) Validate() error {
	if g.Nx <= 0 || g.Ny <= 0 {
		return fmt.Errorf("grid %q: non-positive dimensions %d×%d", g.Name, g.Nx, g.Ny)
	}
	n := g.N()
	for name, l := range map[string]int{
		"Mask": len(g.Mask), "HT": len(g.HT), "TAREA": len(g.TAREA),
		"TLat": len(g.TLat), "TLon": len(g.TLon),
		"HU": len(g.HU), "DXU": len(g.DXU), "DYU": len(g.DYU), "UAREA": len(g.UAREA),
	} {
		if l != n {
			return fmt.Errorf("grid %q: field %s has length %d, want %d", g.Name, name, l, n)
		}
	}
	for j := 0; j < g.Ny; j++ {
		for i := 0; i < g.Nx; i++ {
			k := g.Idx(i, j)
			if g.Mask[k] && g.HT[k] <= 0 {
				return fmt.Errorf("grid %q: ocean point (%d,%d) has depth %g", g.Name, i, j, g.HT[k])
			}
			if !g.Mask[k] && g.HT[k] != 0 {
				return fmt.Errorf("grid %q: land point (%d,%d) has depth %g", g.Name, i, j, g.HT[k])
			}
			if g.Mask[k] && (g.TAREA[k] <= 0) {
				return fmt.Errorf("grid %q: ocean point (%d,%d) has area %g", g.Name, i, j, g.TAREA[k])
			}
			wet := g.IsOcean(i, j) && g.IsOcean(i+1, j) && g.IsOcean(i, j+1) && g.IsOcean(i+1, j+1)
			if wet {
				if g.HU[k] <= 0 {
					return fmt.Errorf("grid %q: wet corner (%d,%d) has HU %g", g.Name, i, j, g.HU[k])
				}
				if g.DXU[k] <= 0 || g.DYU[k] <= 0 || g.UAREA[k] <= 0 {
					return fmt.Errorf("grid %q: wet corner (%d,%d) has non-positive metrics", g.Name, i, j)
				}
			} else if g.HU[k] != 0 {
				return fmt.Errorf("grid %q: dry corner (%d,%d) has HU %g", g.Name, i, j, g.HU[k])
			}
		}
	}
	return nil
}

// deriveCorners fills HU and UAREA from HT/Mask and the spacings; it assumes
// DXU/DYU are already populated.
func (g *Grid) deriveCorners() {
	for j := 0; j < g.Ny; j++ {
		for i := 0; i < g.Nx; i++ {
			k := g.Idx(i, j)
			g.UAREA[k] = g.DXU[k] * g.DYU[k]
			if g.IsOcean(i, j) && g.IsOcean(i+1, j) && g.IsOcean(i, j+1) && g.IsOcean(i+1, j+1) {
				h := g.HT[k]
				for _, kk := range []int{g.Idx(i+1, j), g.Idx(i, j+1), g.Idx(i+1, j+1)} {
					if g.HT[kk] < h {
						h = g.HT[kk]
					}
				}
				g.HU[k] = h
			} else {
				g.HU[k] = 0
			}
		}
	}
}
