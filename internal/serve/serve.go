// Package serve is the concurrent solve service: a pool of warmed-up solver
// sessions (operator assembled, preconditioner factored, eigenvalue bounds
// cached) serving Solve requests from many goroutines at once.
//
// A core.Session is deliberately not safe for concurrent use — its field
// arenas and output buffer are reused across solves — so the service owns
// the concurrency story instead: sessions live in per-key pools and each is
// driven by exactly one worker goroutine. Requests that share a session are
// coalesced into batches of back-to-back solves on one checkout, and a
// bounded queue with load shedding keeps the service responsive under
// overload instead of letting latency grow without bound.
//
// Determinism survives pooling: every solve runs its rank programs on a
// fresh virtual-machine schedule, so a solve's residual history depends only
// on (grid, method, preconditioner, rhs) — never on which pooled session ran
// it or what that session solved before. Concurrent pooled solves are
// bitwise-identical to serial ones.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/grid"
	"repro/internal/obs"
)

// Typed admission errors, matchable with errors.Is.
var (
	// ErrOverloaded reports a request shed because the key's queue was
	// full. The caller may retry with backoff; the service never blocks
	// admission on a full queue.
	ErrOverloaded = errors.New("serve: overloaded, request shed")
	// ErrClosed reports a request rejected because the service is
	// draining or closed.
	ErrClosed = errors.New("serve: service closed")
	// ErrCircuitOpen reports a request rejected because its session key's
	// circuit breaker is open: recent solves on the key faulted beyond
	// recovery, and the service is quarantining the key until the cooldown
	// elapses rather than burning sessions on a failing configuration.
	ErrCircuitOpen = errors.New("serve: circuit open for session key")
)

// Options configures a Service. The zero value serves the default grid set
// with modest pooling; all limits have working defaults.
type Options struct {
	// Cores is the virtual rank count per session (0 = one rank per block).
	Cores int
	// Tau is the barotropic time step for the operator's mass term
	// (default 1920 s).
	Tau float64
	// MachineName prices virtual time ("" = free, the serving default).
	MachineName string
	// Threads caps how many virtual ranks per session run concurrently on
	// real cores (comm.World.SetThreads): 0 = GOMAXPROCS at build time.
	// Solves stay bitwise identical across settings; only wall-clock and
	// scheduling pressure change.
	Threads int
	// Solver carries the remaining solver knobs (tolerance, EVP block
	// size, Lanczos controls). Precond is overwritten per request.
	Solver core.Options

	// MaxSessionsPerKey bounds warmed sessions (= worker goroutines) per
	// (grid, method, precond) key; default 2.
	MaxSessionsPerKey int
	// MaxQueue bounds the per-key request queue; a full queue sheds with
	// ErrOverloaded. Default 64.
	MaxQueue int
	// MaxBatch caps how many requests one worker coalesces into a single
	// session checkout. Default 8.
	MaxBatch int
	// MaxWait is how long a worker holds a non-full batch open for
	// stragglers once it has at least one request. Default 2ms.
	MaxWait time.Duration

	// GridProvider resolves grid names to grids; default grid.ByName.
	// Results are cached per name for the life of the service.
	GridProvider func(name string) (*grid.Grid, error)
	// Registry receives the serve_* metrics; nil creates a private one.
	Registry *obs.Registry

	// Injector, when non-nil, is wired into every session's communication
	// world: solves run under deterministic fault injection and the workers
	// switch to resilient solving (core.Session.SolveResilient) with the
	// retry budget below. Nil (the default) leaves the solve path bitwise
	// identical to a service that never heard of fault injection.
	Injector *faults.Injector
	// RetryBudget is how many times a worker re-runs one request whose
	// resilient solve still faulted beyond recovery (default 1, negative
	// disables). Only consulted when Injector is set.
	RetryBudget int
	// CircuitThreshold opens a key's circuit breaker after this many
	// consecutive faulted solves on the key; an open circuit sheds requests
	// with ErrCircuitOpen until CircuitCooldown elapses, then admits one
	// probe (half-open). 0 (the default) disables the breaker.
	CircuitThreshold int
	// CircuitCooldown is how long an open circuit quarantines its key
	// (default 1s).
	CircuitCooldown time.Duration

	// TraceCapacity, when > 0, attaches a tracer to every session's world
	// retaining this many events per rank, enabling request-scoped span
	// trees and Perfetto export (WritePerfetto). 0 (the default) disables
	// rank-level tracing; request records still flow to the flight recorder.
	TraceCapacity int
	// FlightRing sizes the always-on flight recorder's ring of recent
	// request records (0 = obs.DefaultFlightRing).
	FlightRing int
	// FlightDir is the directory flight-recorder incident dumps are written
	// to when a trigger fires (fault beyond budget, circuit opening, SLO
	// breach). "" keeps the recorder purely in-memory: triggers are counted
	// but no files are written.
	FlightDir string
	// LatencySLO, when > 0, is the per-request latency objective; a request
	// finishing slower triggers a flight-recorder dump with reason
	// "slo_breach". 0 disables the SLO trigger.
	LatencySLO time.Duration
}

func (o Options) withDefaults() Options {
	if o.Tau == 0 {
		o.Tau = 1920
	}
	if o.MaxSessionsPerKey == 0 {
		o.MaxSessionsPerKey = 2
	}
	if o.MaxQueue == 0 {
		o.MaxQueue = 64
	}
	if o.MaxBatch == 0 {
		o.MaxBatch = 8
	}
	if o.MaxWait == 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	if o.GridProvider == nil {
		o.GridProvider = grid.ByName
	}
	if o.RetryBudget == 0 {
		o.RetryBudget = 1
	}
	if o.CircuitCooldown == 0 {
		o.CircuitCooldown = time.Second
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	return o
}

// Key identifies a session pool: requests with equal keys share warmed
// sessions. MethodCSI is normalized to MethodPCSI + PrecondIdentity before
// keying, so "csi" and "pcsi/none" requests share a pool. Precision is part
// of the key because mixed-precision sessions carry their own float32
// arenas — a float32 solve can never reuse a float64 session.
type Key struct {
	// Grid is the resolved preset name.
	Grid string
	// Method is the normalized solver algorithm.
	Method core.Method
	// Precond is the normalized preconditioner.
	Precond core.PrecondType
	// Precision is the iteration arithmetic (zero value = Float64).
	Precision core.Precision
	// SStep is the s-step block size, set only for MethodSStep (normalize
	// zeroes it for every other method and defaults it to 4 for sstep) —
	// sessions with different block sizes have different field arenas and
	// different numerics, so they never share a pool.
	SStep int
}

// String renders the key for metric labels: "test/pcsi/evp". Float64 — the
// overwhelmingly common case — is implicit; float32 keys append a fourth
// segment ("test/pcsi/evp/float32") so pre-existing float64 labels stay
// stable. s-step keys append an "s4"-style segment for the same reason.
func (k Key) String() string {
	s := k.Grid + "/" + k.Method.String() + "/" + k.Precond.String()
	if k.Precision == core.Float32 {
		s += "/" + k.Precision.String()
	}
	if k.Method == core.MethodSStep {
		s += fmt.Sprintf("/s%d", k.SStep)
	}
	return s
}

// Request is one solve submission.
type Request struct {
	// Grid names the preset the service should solve on ("test", "1deg", ...).
	Grid string
	// Method selects the solver algorithm; the zero value is ChronGear,
	// POP's production solver.
	Method core.Method
	// Precond selects the preconditioner; the zero value is diagonal,
	// POP's default.
	Precond core.PrecondType
	// Precision selects the iteration arithmetic; the zero value is
	// Float64. Float32 requests run mixed-precision solves with iterative
	// refinement on their own session pool.
	Precision core.Precision
	// SStep is the s-step block size for MethodSStep requests (0 = the
	// default 4; valid 1..core.MaxSStep). Ignored — and normalized to 0 in
	// the session key — for every other method.
	SStep int
	// B is the right-hand side (length = grid N). X0 is the initial guess
	// (nil = zero).
	B, X0 []float64
}

// Response is one completed solve. X is the caller's copy of the solution —
// unlike core.Session solves, it is not invalidated by later requests.
type Response struct {
	// Result summarizes the solve (iterations, convergence, recovery
	// counts, virtual-time statistics).
	Result core.Result
	// X is the solution vector (length = grid N).
	X []float64
	// TraceID is the request's trace ID: the key correlating this response
	// with its rank-level spans in a Perfetto export and its record in the
	// flight recorder.
	TraceID uint64
}

// Stats is a point-in-time snapshot of the service counters.
type Stats struct {
	Requests    int64 // admissions attempted
	Shed        int64 // rejected with ErrOverloaded
	Expired     int64 // expired in queue before their solve started
	Solves      int64 // solves executed
	Batches     int64 // session checkouts (≤ Solves when coalescing works)
	Errors      int64 // solves that returned an error
	Sessions    int64 // sessions built across all keys
	Retried     int64 // request re-runs after a faulted resilient solve
	Faulted     int64 // requests whose solve faulted beyond the retry budget
	Recovered   int64 // requests rescued by a retry after a faulted solve
	CircuitShed int64 // requests rejected with ErrCircuitOpen
}

// Service is the concurrent solve front end. Create with New, submit with
// Solve from any number of goroutines, stop with Close.
type Service struct {
	opts Options

	// mu guards closed and pools. Queue sends happen under the read lock,
	// Close closes queues under the write lock — so a send can never race
	// a close.
	mu     sync.RWMutex
	closed bool
	pools  map[Key]*keyPool

	gridMu sync.Mutex
	grids  map[string]*gridEntry

	wg        sync.WaitGroup // worker goroutines
	sessCount atomic.Int64   // sessions built across all keys

	// flight is the always-on black box: every finished request's span
	// summary lands in its ring, and incident triggers dump it.
	flight *obs.FlightRecorder

	// sessMu guards sess, the registry of built sessions in build order —
	// the stable session indices Perfetto export and request records use.
	sessMu sync.Mutex
	sess   []*sessionSlot

	m metrics
}

// sessionSlot is the service-level record of one built session. mu
// serializes solving against trace export: a worker holds it for the length
// of one batch, WritePerfetto holds it while snapshotting the session's
// rings (the per-rank ring buffers are single-writer with no internal
// synchronization, so an export racing a solve would read torn events).
type sessionSlot struct {
	idx    int
	key    Key
	tracer *obs.Tracer
	ranks  int
	mu     sync.Mutex
}

// registerSession appends a slot and returns it; idx is its build order.
func (s *Service) registerSession(key Key, tr *obs.Tracer, ranks int) *sessionSlot {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	sl := &sessionSlot{idx: len(s.sess), key: key, tracer: tr, ranks: ranks}
	s.sess = append(s.sess, sl)
	return sl
}

type metrics struct {
	requests    *obs.Counter
	shed        *obs.Counter
	expired     *obs.Counter
	solves      *obs.Counter
	batches     *obs.Counter
	errors      *obs.Counter
	retried     *obs.Counter
	faulted     *obs.Counter
	recovered   *obs.Counter
	circuitShed *obs.Counter
	sessions    *obs.Gauge
	queueMax    *obs.Gauge
	queueDepth  *obs.Gauge
	latency     *obs.Histogram
	queueWait   *obs.Histogram
	batchSize   *obs.Histogram
}

// New builds a Service. No sessions are warmed until the first request for
// each key arrives (warm-up is synchronous on that first request, so
// configuration errors surface at the caller).
func New(opts Options) *Service {
	o := opts.withDefaults()
	r := o.Registry
	s := &Service{
		opts:  o,
		pools: make(map[Key]*keyPool),
		grids: make(map[string]*gridEntry),
		m: metrics{
			requests:    r.Counter("serve_requests_total", "solve admissions attempted"),
			shed:        r.Counter("serve_shed_total", "requests shed with ErrOverloaded"),
			expired:     r.Counter("serve_expired_total", "requests expired in queue before solving"),
			solves:      r.Counter("serve_solves_total", "solves executed"),
			batches:     r.Counter("serve_batches_total", "session checkouts (batches)"),
			errors:      r.Counter("serve_errors_total", "solves returning an error"),
			retried:     r.Counter("serve_retried_total", "request re-runs after a faulted solve"),
			faulted:     r.Counter("serve_faulted_total", "requests faulted beyond the retry budget"),
			recovered:   r.Counter("serve_recovered_total", "requests rescued by a retry"),
			circuitShed: r.Counter("serve_circuit_shed_total", "requests rejected with ErrCircuitOpen"),
			sessions:    r.Gauge("serve_sessions", "warmed sessions across all keys"),
			queueMax: r.Gauge("serve_queue_depth_peak",
				"deepest queue observed at admission since service start; high-water mark only, never resets or decays"),
			queueDepth: r.Gauge("serve_queue_depth",
				"current queue depth, sampled at enqueue and dequeue"),
			latency: r.Histogram("serve_latency_seconds", "request latency (admission to response)",
				[]float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1, 3, 10}),
			queueWait: r.Histogram("serve_queue_wait_seconds", "time between admission and solve start",
				[]float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1}),
			batchSize: r.Histogram("serve_batch_size", "requests coalesced per session checkout",
				[]float64{1, 2, 4, 8, 16, 32}),
		},
	}
	s.flight = obs.NewFlightRecorder(o.FlightRing, o.FlightDir)
	return s
}

// normalize validates the request's algorithm selection and folds the
// MethodCSI alias into its canonical key.
func normalize(req *Request) (Key, error) {
	if !req.Method.Valid() {
		return Key{}, fmt.Errorf("serve: unknown method %v: %w", req.Method, core.ErrBadSpec)
	}
	if !req.Precond.Valid() {
		return Key{}, fmt.Errorf("serve: unknown preconditioner %v: %w", req.Precond, core.ErrBadSpec)
	}
	if !req.Precision.Valid() {
		return Key{}, fmt.Errorf("serve: unknown precision %v: %w", req.Precision, core.ErrBadSpec)
	}
	k := Key{Grid: req.Grid, Method: req.Method, Precond: req.Precond, Precision: req.Precision}
	if k.Grid == "" {
		k.Grid = grid.PresetTest
	}
	if k.Method == core.MethodCSI {
		k.Method = core.MethodPCSI
		k.Precond = core.PrecondIdentity
	}
	if k.Method == core.MethodSStep {
		if k.Precision == core.Float32 {
			return Key{}, fmt.Errorf("serve: method sstep has no float32 path: %w", core.ErrBadSpec)
		}
		k.SStep = req.SStep
		if k.SStep == 0 {
			k.SStep = 4
		}
		if k.SStep < 1 || k.SStep > core.MaxSStep {
			return Key{}, fmt.Errorf("serve: s-step block size %d out of 1..%d: %w", k.SStep, core.MaxSStep, core.ErrBadSpec)
		}
	}
	return k, nil
}

// NormalizeRequest validates req's algorithm selection and returns the
// session-pool key it would be served under — the same normalization Solve
// applies at admission, exported so the fleet router can shard on the
// canonical key (csi and pcsi/none land on the same shard, exactly as they
// share a pool here).
func NormalizeRequest(req Request) (Key, error) { return normalize(&req) }

// Solve submits one request and blocks until its solve completes, the
// context is done, or the request is shed. Safe for concurrent use. The
// returned Response.X is an independent copy of the solution.
//
// Every request gets a trace ID — the one carried by ctx
// (obs.ContextWithTraceID) when present, a fresh one otherwise — returned in
// Response.TraceID and stamped onto every rank-level span the solve emits.
func (s *Service) Solve(ctx context.Context, req Request) (Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	traceID := obs.TraceIDFromContext(ctx)
	if traceID == 0 {
		traceID = obs.NewTraceID()
	}
	s.m.requests.Inc()
	key, err := normalize(&req)
	if err != nil {
		return Response{}, err
	}

	p, err := s.pool(key)
	if err != nil {
		return Response{}, err
	}
	if !p.circuitAllow() {
		s.m.circuitShed.Inc()
		return Response{}, fmt.Errorf("serve: key %s quarantined: %w", key, ErrCircuitOpen)
	}
	// Warm the first session synchronously so build errors (unknown grid,
	// bad options) surface here rather than poisoning the queue.
	if err := p.ensureBuilt(); err != nil {
		return Response{}, err
	}
	if n := p.n(); len(req.B) != n {
		return Response{}, fmt.Errorf("serve: rhs length %d, want %d for grid %q: %w",
			len(req.B), n, key.Grid, core.ErrBadSpec)
	}
	if req.X0 != nil && len(req.X0) != p.n() {
		return Response{}, fmt.Errorf("serve: x0 length %d, want %d for grid %q: %w",
			len(req.X0), p.n(), key.Grid, core.ErrBadSpec)
	}

	r := &request{ctx: ctx, req: req, key: key, resp: make(chan result, 1),
		traceID: traceID, start: start, enqueued: time.Now()}

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return Response{}, ErrClosed
	}
	select {
	case p.queue <- r:
	default:
		s.mu.RUnlock()
		s.m.shed.Inc()
		return Response{}, ErrOverloaded
	}
	depth := len(p.queue)
	s.mu.RUnlock()
	s.m.queueDepth.Set(float64(depth))
	if float64(depth) > s.m.queueMax.Value() {
		s.m.queueMax.Set(float64(depth))
	}
	// A backlog deeper than one batch means the current workers are
	// saturated; warm another session if the key has headroom.
	if depth > s.opts.MaxBatch {
		p.maybeGrow()
	}

	select {
	case out := <-r.resp:
		s.m.latency.Observe(time.Since(r.enqueued).Seconds())
		return out.resp, out.err
	case <-ctx.Done():
		// The worker may still run or skip this request; either way it
		// sends into the buffered channel and never blocks on us.
		return Response{}, fmt.Errorf("serve: request abandoned: %w", context.Cause(ctx))
	}
}

// pool returns (creating if needed) the key's pool.
func (s *Service) pool(key Key) (*keyPool, error) {
	s.mu.RLock()
	p := s.pools[key]
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	if p != nil {
		return p, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if p = s.pools[key]; p == nil {
		p = &keyPool{
			svc:   s,
			key:   key,
			queue: make(chan *request, s.opts.MaxQueue),
		}
		s.pools[key] = p
	}
	return p, nil
}

// Snapshot returns the current counter values.
func (s *Service) Snapshot() Stats {
	return Stats{
		Requests:    s.m.requests.Value(),
		Shed:        s.m.shed.Value(),
		Expired:     s.m.expired.Value(),
		Solves:      s.m.solves.Value(),
		Batches:     s.m.batches.Value(),
		Errors:      s.m.errors.Value(),
		Sessions:    int64(s.m.sessions.Value()),
		Retried:     s.m.retried.Value(),
		Faulted:     s.m.faulted.Value(),
		Recovered:   s.m.recovered.Value(),
		CircuitShed: s.m.circuitShed.Value(),
	}
}

// Grids returns the names of the grid presets the service has resolved so
// far, sorted — the self-description surfaced by popserver's /stats.
func (s *Service) Grids() []string {
	s.gridMu.Lock()
	defer s.gridMu.Unlock()
	names := make([]string, 0, len(s.grids))
	for name := range s.grids {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Registry returns the metrics registry the service reports into.
func (s *Service) Registry() *obs.Registry { return s.opts.Registry }

// Flight returns the service's flight recorder (always non-nil).
func (s *Service) Flight() *obs.FlightRecorder { return s.flight }

// WritePerfetto exports every session's rank-level spans plus the flight
// recorder's request records as Chrome trace-event JSON (one Perfetto
// process per session, one thread per rank, the serve layer on its own
// process). It briefly serializes against each session's worker — export
// waits for in-flight batches so the single-writer rings are quiescent when
// read — and publishes ring-drop totals into obs_trace_dropped_total.
// Sessions built without tracing (Options.TraceCapacity == 0) contribute
// only request records.
func (s *Service) WritePerfetto(w io.Writer) error {
	tracks, dropped := s.ExportTracks()
	return obs.WritePerfetto(w, tracks, s.flight.Recent(), dropped)
}

// ExportTracks snapshots every traced session's rank-level spans as Perfetto
// tracks (PID = session index + 1, as WritePerfetto renders them) and
// returns them with the total ring-drop count. It serializes against each
// session's worker exactly like WritePerfetto. The fleet layer uses it to
// merge worker tracks — rewriting PIDs and process names per worker — into
// one fleet-wide trace.
func (s *Service) ExportTracks() ([]obs.Track, int64) {
	s.sessMu.Lock()
	slots := append([]*sessionSlot(nil), s.sess...)
	s.sessMu.Unlock()
	var tracks []obs.Track
	var dropped int64
	for _, sl := range slots {
		if sl.tracer == nil {
			continue
		}
		sl.mu.Lock()
		sl.tracer.ExportDropped(s.opts.Registry)
		dropped += sl.tracer.Dropped()
		for rid := 0; rid < sl.ranks; rid++ {
			tracks = append(tracks, obs.Track{
				Process: fmt.Sprintf("session %d %s", sl.idx, sl.key),
				PID:     sl.idx + 1,
				Thread:  fmt.Sprintf("rank %d", rid),
				TID:     rid,
				Events:  sl.tracer.Rank(rid).Events(),
			})
		}
		sl.mu.Unlock()
	}
	return tracks, dropped
}

// Close drains the service: new requests are rejected with ErrClosed,
// already-queued requests are still solved, and Close returns when every
// worker has finished (or ctx expires first, leaving workers to finish in
// the background).
func (s *Service) Close(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		for _, p := range s.pools {
			close(p.queue)
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted: %w", context.Cause(ctx))
	}
}
