package core

import (
	"context"
	"math"

	"repro/internal/comm"
)

// SolvePCG runs the classic preconditioned conjugate gradient method with
// a background context; see SolvePCGContext.
func (s *Session) SolvePCG(b, x0 []float64) (Result, []float64, error) {
	return s.SolvePCGContext(context.Background(), b, x0)
}

// SolvePCGContext runs the classic preconditioned conjugate gradient
// method — the textbook formulation POP used before ChronGear, kept as the
// baseline that shows why merging its *two* global reductions per
// iteration into one (ChronGear) and then into none (P-CSI) matters at
// scale. Cancellation is observed at convergence-check boundaries only
// (see the session-level cancellation protocol).
func (s *Session) SolvePCGContext(ctx context.Context, b, x0 []float64) (Result, []float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := s.Setup(); err != nil {
		return Result{}, nil, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, nil, ctxSolveErr(ctx, "pcg", 0)
	}
	o := s.Opts
	out := s.solveOut()
	res := Result{Solver: "pcg", Precond: o.Precond}
	trace := &SolveTrace{
		Residuals: make([]ResidualPoint, 0, o.MaxIters/o.CheckEvery+1)}
	cancelled := false // written by rank 0 only, read after Run

	st := s.W.Run(func(r *comm.Rank) {
		rs := s.state(r)
		nb := len(r.Blocks)
		xs := s.scatterMasked(r, "pcg.x", x0)
		bs := s.scatterMasked(r, "pcg.b", b)
		rr := s.field(r, "pcg.r")
		rp := s.field(r, "pcg.rp")
		zz := s.field(r, "pcg.z")
		pp := s.zeroField(r, "pcg.p")
		// Reduction payload reused by every collective in this program —
		// hoisted so the steady-state loop allocates nothing. Checks append
		// the residual norm and the cancellation flag.
		payload := make([]float64, 3)

		var bn2 float64
		for i := 0; i < nb; i++ {
			residual(rs.locs[i], rr[i], bs[i], xs[i])
			r.AddFlops(9 * int64(rs.locs[i].InteriorLen()))
			bn2 += rs.locs[i].MaskedDotInterior(bs[i], bs[i])
			r.AddFlops(2 * int64(rs.locs[i].InteriorLen()))
		}
		payload[0] = bn2
		bnorm := math.Sqrt(r.AllReduce(payload[:1])[0])
		if r.ID == 0 {
			res.BNorm = bnorm
		}
		if bnorm == 0 {
			for i, blk := range r.Blocks {
				for k := range xs[i] {
					xs[i][k] = 0
				}
				s.D.GatherInto(out, xs[i], blk)
			}
			if r.ID == 0 {
				res.Converged = true
			}
			return
		}
		target := o.Tol * bnorm

		rhoPrev := 0.0
		converged := false
		k := 0
		for k < o.MaxIters {
			k++
			check := k%o.CheckEvery == 0
			var rhoL float64
			for i := 0; i < nb; i++ {
				loc := rs.locs[i]
				rs.pre[i].Apply(rp[i], rr[i])
				r.AddFlops(rs.pre[i].ApplyFlops())
				rhoL += loc.MaskedDotInterior(rr[i], rp[i])
				r.AddFlops(2 * int64(loc.InteriorLen()))
			}
			payload[0] = rhoL
			rho := r.AllReduce(payload[:1])[0] // reduction 1 of 2
			if k == 1 {
				for i := 0; i < nb; i++ {
					copy(pp[i], rp[i])
				}
			} else {
				beta := rho / rhoPrev
				for i := 0; i < nb; i++ {
					xpay(rs.locs[i], pp[i], rp[i], beta)
					r.AddFlops(int64(rs.locs[i].InteriorLen()))
				}
			}
			rhoPrev = rho
			r.Exchange(pp)
			var deltaL, rnL float64
			for i := 0; i < nb; i++ {
				loc := rs.locs[i]
				// z = B·p fused with δ += ⟨p, z⟩.
				deltaL += loc.ApplyAndMaskedDot(zz[i], pp[i])
				r.AddFlops(9 * int64(loc.InteriorLen()))
				r.AddFlops(2 * int64(loc.InteriorLen()))
				if check {
					rnL += loc.MaskedDotInterior(rr[i], rr[i])
					r.AddFlops(2 * int64(loc.InteriorLen()))
				}
			}
			payload[0] = deltaL
			p := payload[:1]
			if check {
				payload[1] = rnL
				payload[2] = cancelFlag(ctx)
				p = payload[:3]
			}
			g := r.AllReduce(p) // reduction 2 of 2
			alpha := rho / g[0]
			if check {
				rn := math.Sqrt(g[1])
				if r.ID == 0 {
					res.RelResidual = rn / bnorm
				}
				traceResidual(r, trace, k, rn/bnorm)
				if rn <= target {
					converged = true
					break
				}
				if g[2] != 0 { // some rank saw ctx done — all ranks stop here
					if r.ID == 0 {
						cancelled = true
					}
					break
				}
			}
			for i := 0; i < nb; i++ {
				loc := rs.locs[i]
				axpy(loc, xs[i], pp[i], alpha)
				axpy(loc, rr[i], zz[i], -alpha)
				r.AddFlops(2 * int64(loc.InteriorLen()))
			}
		}
		if r.ID == 0 {
			res.Iterations = k
			res.Converged = converged
		}
		for i, blk := range r.Blocks {
			s.D.GatherInto(out, xs[i], blk)
		}
	})
	res.Stats = st
	res.Trace = trace
	s.restoreLand(out, b)
	if cancelled {
		return res, out, ctxSolveErr(ctx, "pcg", res.Iterations)
	}
	return res, out, nil
}
