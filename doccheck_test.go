package pop_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// docPackages is the documented public surface: the facade package plus the
// internal packages whose types it re-exports wholesale through aliases, so
// their godoc IS the public godoc.
var docPackages = []string{
	".", "internal/serve", "internal/faults", "internal/obs",
	"internal/analysis", "internal/analysis/analyzertest",
	"internal/api", "internal/fleet", "internal/core",
	"internal/comm", "internal/decomp", "internal/grid", "internal/stencil",
}

// TestPublicSurfaceDocumented fails on any exported identifier in the public
// surface that lacks a doc comment: package-level types, functions, methods
// on exported receivers, consts/vars (a doc comment on the enclosing group
// counts), and exported struct fields. verify.sh runs it as the
// doc-coverage gate, so an undocumented export breaks the build checks, not
// just the rendered godoc.
func TestPublicSurfaceDocumented(t *testing.T) {
	for _, dir := range docPackages {
		var missing []string
		fset := token.NewFileSet()
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			missing = append(missing, undocumented(fset, f)...)
		}
		if len(missing) > 0 {
			t.Errorf("package %s: %d undocumented exported identifiers:\n  %s",
				dir, len(missing), strings.Join(missing, "\n  "))
		}
	}
}

// undocumented returns a position-tagged entry for every exported identifier
// in f that has no doc comment.
func undocumented(fset *token.FileSet, f *ast.File) []string {
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: %s %s", filepath.Base(p.Filename), p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedReceiver(d) {
				continue
			}
			if d.Doc == nil {
				kind := "func"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			groupDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if !s.Name.IsExported() {
						continue
					}
					if s.Doc == nil && !groupDoc {
						report(s.Pos(), "type", s.Name.Name)
					}
					// Within an exported struct, every exported field needs
					// its own doc or trailing comment.
					if st, ok := s.Type.(*ast.StructType); ok {
						for _, fld := range st.Fields.List {
							for _, n := range fld.Names {
								if n.IsExported() && fld.Doc == nil && fld.Comment == nil {
									report(n.Pos(), "field", s.Name.Name+"."+n.Name)
								}
							}
						}
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.IsExported() && s.Doc == nil && s.Comment == nil && !groupDoc {
							report(n.Pos(), "const/var", n.Name)
						}
					}
				}
			}
		}
	}
	return out
}

// exportedReceiver reports whether d is a top-level function or a method on
// an exported receiver type (methods on unexported types are not public
// surface even when their own name is exported).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}
