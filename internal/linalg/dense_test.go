package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomDiagDominant(rng *rand.Rand, n int) *Dense {
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		var rowSum float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := rng.NormFloat64()
			a.Set(i, j, v)
			rowSum += math.Abs(v)
		}
		a.Set(i, i, rowSum+1+rng.Float64())
	}
	return a
}

func TestDenseAtSet(t *testing.T) {
	a := NewDense(3, 4)
	a.Set(2, 3, 7.5)
	a.Set(0, 0, -1)
	if a.At(2, 3) != 7.5 || a.At(0, 0) != -1 {
		t.Fatalf("At/Set round trip failed: got %v, %v", a.At(2, 3), a.At(0, 0))
	}
	if a.At(1, 1) != 0 {
		t.Fatalf("fresh matrix not zeroed")
	}
}

func TestDenseMulVecKnown(t *testing.T) {
	a := NewDense(2, 3)
	// [1 2 3; 4 5 6] · [1 1 1] = [6 15]
	for j := 0; j < 3; j++ {
		a.Set(0, j, float64(j+1))
		a.Set(1, j, float64(j+4))
	}
	y := make([]float64, 2)
	a.MulVec(y, []float64{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec got %v, want [6 15]", y)
	}
}

func TestDenseMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomDiagDominant(rng, 5)
	id := NewDense(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	c := a.Mul(id)
	for i, v := range c.Data {
		if v != a.Data[i] {
			t.Fatalf("A·I ≠ A at flat index %d: %v vs %v", i, v, a.Data[i])
		}
	}
}

func TestLUSolveKnown(t *testing.T) {
	// 2x2: [2 1; 1 3] x = [3 5] → x = [4/5, 7/5]
	a := NewDense(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{3, 5}
	f.Solve(x)
	if !almostEqual(x[0], 0.8, 1e-14) || !almostEqual(x[1], 1.4, 1e-14) {
		t.Fatalf("solve got %v, want [0.8 1.4]", x)
	}
}

func TestLUSolveResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 8, 25, 60} {
		a := randomDiagDominant(rng, n)
		f, err := Factor(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(b, xTrue)
		f.Solve(b)
		if d := MaxAbsDiff(b, xTrue); d > 1e-10 {
			t.Fatalf("n=%d: solution error %g", n, d)
		}
	}
}

func TestLUDet(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 3)
	a.Set(0, 1, 1)
	a.Set(1, 0, 4)
	a.Set(1, 1, 2)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f.Det(), 2, 1e-12) {
		t.Fatalf("det got %v, want 2", f.Det())
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := Factor(a); err == nil {
		t.Fatal("expected singular matrix error")
	}
}

func TestFactorNonSquare(t *testing.T) {
	if _, err := Factor(NewDense(2, 3)); err == nil {
		t.Fatal("expected error for non-square Factor")
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 4, 17, 40} {
		a := randomDiagDominant(rng, n)
		inv, err := Inverse(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		prod := a.Mul(inv)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if !almostEqual(prod.At(i, j), want, 1e-9) {
					t.Fatalf("n=%d: (A·A⁻¹)[%d,%d]=%v", n, i, j, prod.At(i, j))
				}
			}
		}
	}
}

// Property: for random diagonally dominant systems, Factor+Solve reproduces a
// planted solution.
func TestQuickLUSolve(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(99))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		a := randomDiagDominant(rng, n)
		lu, err := Factor(a)
		if err != nil {
			return false
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(b, xTrue)
		lu.Solve(b)
		return MaxAbsDiff(b, xTrue) < 1e-9
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
