package core

import (
	"context"
	"math"

	"repro/internal/comm"
)

// SolveChronGear runs the Chronopoulos–Gear solver with a background
// context; see SolveChronGearContext.
func (s *Session) SolveChronGear(b, x0 []float64) (Result, []float64, error) {
	return s.SolveChronGearContext(context.Background(), b, x0)
}

// SolveChronGearContext runs the Chronopoulos–Gear solver (paper Algorithm
// 1): POP's production barotropic solver, a PCG variant whose two inner
// products share a single global reduction per iteration. The convergence
// residual rides along that reduction every CheckEvery iterations, so no
// extra communication is spent on checking.
//
// b and x0 are global fields; the returned slice is the solution (x0 is
// not modified). Boundary halos are refreshed on the preconditioned
// residual, which keeps one halo update per iteration for any
// preconditioner.
//
// Cancellation is observed at convergence-check boundaries only (see the
// session-level cancellation protocol); a cancelled solve returns the
// current iterate together with an error matching ctx.Err().
func (s *Session) SolveChronGearContext(ctx context.Context, b, x0 []float64) (Result, []float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := s.Setup(); err != nil {
		return Result{}, nil, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, nil, ctxSolveErr(ctx, "chrongear", 0)
	}
	o := s.Opts
	out := s.solveOut()
	res := Result{Solver: "chrongear", Precond: o.Precond}
	trace := &SolveTrace{
		Residuals: make([]ResidualPoint, 0, o.MaxIters/o.CheckEvery+1)}
	cancelled := false // written by rank 0 only, read after Run
	faulted := false   // written by rank 0 only, read after Run

	// Resilient mode runs only under an active fault injector; otherwise
	// every branch below reduces to the legacy path (see internal/core
	// resilient.go for the protocol).
	inj := s.W.Faults
	resilient := inj.Enabled() && o.MaxRecoveries >= 0

	st := s.W.Run(func(r *comm.Rank) {
		rs := s.state(r)
		nb := len(r.Blocks)
		xs := s.scatterMasked(r, "cg.x", x0)
		bs := s.scatterMasked(r, "cg.b", b)
		rr := s.field(r, "cg.r")
		rp := s.field(r, "cg.rp")
		zz := s.field(r, "cg.z")
		ss := s.zeroField(r, "cg.s")
		pp := s.zeroField(r, "cg.p")
		// ck is the iteration-state checkpoint (a copy of x at the last
		// clean convergence check), maintained only in resilient mode.
		var ck [][]float64
		if resilient {
			ck = s.field(r, "cg.ckpt")
		}
		// Reduction payload reused by every collective in this program
		// (sliced to 2–5 entries per call) — hoisted so the steady-state
		// loop allocates nothing. Checks append the residual norm, the
		// cancellation flag, and (in resilient mode) the crash flag.
		payload := make([]float64, 5)

		// r₀ = b − B·x₀ (halos valid from scatter) and ‖b‖².
		payload[0] = stageInitResidual(r, rs, rr, bs, xs)
		var bnorm float64
		if resilient {
			g, nret, ok := reduceRetry(r, inj, payload[:1])
			if r.ID == 0 {
				res.Recovery.ReduceRetries += nret
			}
			if !ok {
				if r.ID == 0 {
					faulted = true
				}
				return
			}
			bnorm = math.Sqrt(g[0])
		} else {
			gsum := r.AllReduce(payload[:1])
			bnorm = math.Sqrt(gsum[0])
		}
		if r.ID == 0 {
			res.BNorm = bnorm
		}
		if bnorm == 0 {
			// x = 0 solves the masked system exactly.
			s.zeroSolutionExit(r, out, xs)
			if r.ID == 0 {
				res.Converged = true
			}
			return
		}
		target := o.Tol * bnorm
		if resilient {
			// Initial checkpoint: x₀ with valid halos from the scatter.
			copyFields(ck, xs)
		}

		rhoPrev, sigmaPrev := 1.0, 0.0
		converged := false
		restores := 0 // identical on every rank: driven by reduced verdicts
		// Stagnation tripwire state (resilient mode only; driven by the
		// reduced check norm, so identical on every rank).
		bestRn := math.Inf(1)
		stall := 0
		k := 0
		for k < o.MaxIters {
			k++
			check := k%o.CheckEvery == 0
			stagePrecond(r, rs, rp, rr) // r' = M⁻¹r
			var rnL float64
			if check {
				rnL = stageDot(r, rs, rr, rr)
			}
			// z = B·r' fused with δ = ⟨z, r'⟩ — one pass over the operands,
			// with the iteration's one boundary update inside — then ρ = ⟨r, r'⟩.
			deltaL := stageFusedMatvecDot(r, rs, zz, rp)
			rhoL := stageDot(r, rs, rr, rp)
			payload[0], payload[1] = rhoL, deltaL
			p := payload[:2]
			crashed := false
			if check {
				payload[2] = rnL
				payload[3] = cancelFlag(ctx)
				p = payload[:4]
				if resilient {
					// Crash verdicts ride the check reduction (see the
					// session cancellation protocol): every rank learns from
					// the reduced sum whether anyone crashed and enters the
					// rollback below in lockstep.
					crashed = inj.CrashRank(r.ID, r.ReduceSeq())
					payload[4] = 0
					if crashed {
						payload[4] = 1
					}
					p = payload[:5]
				}
			}
			var g []float64
			if resilient {
				var nret int
				var ok bool
				g, nret, ok = reduceRetry(r, inj, p) // the single global reduction
				if r.ID == 0 {
					res.Recovery.ReduceRetries += nret
				}
				if !ok {
					if r.ID == 0 {
						faulted = true
					}
					break
				}
			} else {
				g = r.AllReduce(p) // the single global reduction
			}
			rho, delta := g[0], g[1]
			if check {
				rn := math.Sqrt(g[2])
				if r.ID == 0 {
					res.RelResidual = rn / bnorm
				}
				traceResidual(r, trace, k, rn/bnorm)
				doRestore := false
				if resilient && g[4] != 0 {
					// A rank crashed this interval; its iterate is lost. The
					// crash preempts a simultaneous convergence verdict.
					if crashed {
						for i := range xs {
							for idx := range xs[i] {
								xs[i][idx] = 0
							}
						}
					}
					doRestore = true
				} else if rn <= target {
					if !resilient {
						converged = true
						break
					}
					// Confirm on fresh halos before trusting the verdict
					// (ChronGear's x halos are never refreshed mid-solve, and
					// its residual is maintained recursively — both go stale
					// under dropped or corrupted halo exchanges).
					r.Exchange(xs)
					var cnL float64
					for i := 0; i < nb; i++ {
						residual(rs.locs[i], rr[i], bs[i], xs[i])
						r.AddFlops(9 * int64(rs.locs[i].InteriorLen()))
						cnL += rs.locs[i].MaskedDotInterior(rr[i], rr[i])
						r.AddFlops(2 * int64(rs.locs[i].InteriorLen()))
					}
					payload[0] = cnL
					g2, nret, ok := reduceRetry(r, inj, payload[:1])
					if r.ID == 0 {
						res.Recovery.ReduceRetries += nret
					}
					if !ok {
						if r.ID == 0 {
							faulted = true
						}
						break
					}
					crn := math.Sqrt(g2[0])
					if crn <= target {
						if r.ID == 0 {
							res.RelResidual = crn / bnorm
						}
						converged = true
						break
					}
					if math.IsNaN(crn) {
						doRestore = true
					} else {
						// False convergence: restart the CG recurrence from
						// the current iterate (r was just recomputed above).
						for i := 0; i < nb; i++ {
							for idx := range ss[i] {
								ss[i][idx] = 0
							}
							for idx := range pp[i] {
								pp[i][idx] = 0
							}
						}
						rhoPrev, sigmaPrev = 1.0, 0.0
						bestRn = math.Inf(1)
						stall = 0
						traceRecover(r, k, recKindReconverge)
						if r.ID == 0 {
							res.Recovery.Reconverges++
							inj.Recovered("reconverge")
						}
						continue
					}
				} else if resilient && math.IsNaN(rn) {
					doRestore = true // NaN tripwire
				} else if resilient {
					// Silent-corruption tripwire: the recursive norm stopped
					// improving (see cgStallChecks).
					if rn < 0.999*bestRn {
						bestRn = rn
						stall = 0
					} else {
						stall++
						if stall >= cgStallChecks {
							doRestore = true
						}
					}
				}
				if g[3] != 0 { // some rank saw ctx done — all ranks stop here
					if r.ID == 0 {
						cancelled = true
					}
					break
				}
				if doRestore {
					restores++
					if restores > o.MaxRecoveries {
						if r.ID == 0 {
							faulted = true
						}
						break
					}
					// Collective rollback: restore the checkpoint, refresh
					// halos, recompute the residual from scratch, and restart
					// the CG recurrence (zeroed s and p make the first beta
					// irrelevant, exactly like the initial iteration).
					copyFields(xs, ck)
					r.Exchange(xs)
					for i := 0; i < nb; i++ {
						residual(rs.locs[i], rr[i], bs[i], xs[i])
						r.AddFlops(9 * int64(rs.locs[i].InteriorLen()))
						for idx := range ss[i] {
							ss[i][idx] = 0
						}
						for idx := range pp[i] {
							pp[i][idx] = 0
						}
					}
					rhoPrev, sigmaPrev = 1.0, 0.0
					bestRn = math.Inf(1)
					stall = 0
					traceRecover(r, k, recKindRestore)
					if r.ID == 0 {
						res.Recovery.Restores++
						inj.Recovered("restore")
					}
					continue
				}
				if resilient && stall == 0 {
					// Improving check: checkpoint the iterate (free in the
					// cost model — node-local copy). Stalled checks don't
					// checkpoint: a quietly inconsistent recursion may have
					// walked x away from the solution since the last
					// improvement.
					copyFields(ck, xs)
					if r.ID == 0 {
						res.Recovery.CheckpointIter = k
					}
				}
			}
			beta := rho / rhoPrev
			sigma := delta - beta*beta*sigmaPrev
			alpha := rho / sigma
			rhoPrev, sigmaPrev = rho, sigma
			for i := 0; i < nb; i++ {
				loc := rs.locs[i]
				xpay(loc, ss[i], rp[i], beta)   // s = r' + βs
				xpay(loc, pp[i], zz[i], beta)   // p = z + βp
				axpy(loc, xs[i], ss[i], alpha)  // x += αs
				axpy(loc, rr[i], pp[i], -alpha) // r −= αp
				r.AddFlops(4 * int64(loc.InteriorLen()))
			}
		}
		if r.ID == 0 {
			res.Iterations = k
			res.Converged = converged
		}
		s.gatherSolution(r, out, xs)
	})
	res.Stats = st
	res.Trace = trace
	s.restoreLand(out, b)
	if cancelled {
		return res, out, ctxSolveErr(ctx, "chrongear", res.Iterations)
	}
	if faulted {
		return res, out, &FaultedError{Solver: "chrongear", Iterations: res.Iterations,
			Restores: res.Recovery.Restores, ReduceRetries: res.Recovery.ReduceRetries}
	}
	return res, out, nil
}
